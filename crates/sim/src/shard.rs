//! Sharding one simulation run across threads, with deterministic
//! epoch-barrier merges (DESIGN.md §11).
//!
//! The grid runner parallelizes *across* independent runs; this module
//! parallelizes *inside* one run. The constraint is absolute: the sharded
//! result must be **bit-identical** to [`System::run`] at any thread count,
//! the same contract `tests/golden.rs` pins for grid parallelism.
//!
//! What makes that possible is a structural fact of the simulator: the
//! per-lane (per-core) workload streams are pure functions of
//! (profile, lane, seed) — the generators share no state — while everything
//! *downstream* of a record (first-touch page allocation, the shared L2,
//! the scheme's sets/predictor/aging, DRAM bank timing, scheme-emitted
//! global stalls) is coupled across lanes through the timing-driven
//! interleave. So the run is sharded along exactly that seam:
//!
//! * **producer lanes** — worker threads own disjoint lane subsets (dealt
//!   round-robin, the same rule the PR-1 pool uses for grid jobs) and
//!   pre-generate each lane's records in fixed-size *epoch chunks*, with a
//!   bounded lookahead per lane;
//! * **one consumer** — the unmodified [`System::run_with_feed`] loop pulls
//!   records from the per-lane chunk queues in the scheduler's order and
//!   commits all shared-state effects serially, exactly as the serial path
//!   does.
//!
//! Epoch boundaries are the merge barriers: each chunk carries the lane's
//! self-accounted [`LaneDelta`] (records, writes, compute, address
//! checksum), the consumer re-tallies the same delta as it drains the
//! chunk, and once every lane has crossed epoch *e* the per-lane deltas are
//! folded — always in lane order 0, 1, … — into the run's merged delta and
//! rolling checksum. A producer/consumer disagreement (a torn handoff)
//! is counted in [`ShardReport::delta_mismatches`]; determinism tests
//! assert it stays zero and that the checksum is invariant across thread
//! counts.
//!
//! Throughput scales with the workload-generation share of the run (the
//! shared-state commit loop is the serial fraction); the `scaling` bench
//! bin measures the sweep and records it in `results/BENCH_throughput.json`.

use std::collections::VecDeque;
use std::hash::Hasher as _;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use silcfm_trace::{WorkloadGen, WorkloadProfile};
use silcfm_types::obs::Tracer;
use silcfm_types::{CoreId, FxHasher, TraceRecord, VirtAddr};

use crate::system::{NullTap, RecordFeed, ServiceTap, System, SystemOutcome};

/// One lane's record generator, as the sharded runner sees it: an infinite
/// deterministic stream. [`WorkloadGen`] is the closed-loop implementation;
/// the request-serving plane layers arrival stamps and admission over it
/// with its own implementation. Streams must be pure functions of their
/// construction inputs — that purity is what makes sharded runs
/// bit-identical to serial ones.
pub trait RecordStream {
    /// Produces the stream's next record.
    fn next_record(&mut self) -> TraceRecord;
}

impl RecordStream for WorkloadGen {
    fn next_record(&mut self) -> TraceRecord {
        WorkloadGen::next_record(self)
    }
}

/// A factory of per-lane [`RecordStream`]s: producers (or the inline mode)
/// call [`stream`] once per owned lane, on whatever thread owns it, so the
/// factory must be shareable while the streams themselves move to their
/// thread.
///
/// [`stream`]: LaneSource::stream
pub trait LaneSource: Sync {
    /// The per-lane stream type.
    type Stream: RecordStream + Send;

    /// Builds lane `lane`'s stream. Must be a pure function of
    /// `(self, lane)`: two calls with the same lane yield streams that
    /// emit identical records.
    fn stream(&self, lane: usize) -> Self::Stream;
}

/// The closed-loop source behind [`run_system_sharded`]: one
/// [`WorkloadGen`] per lane, the exact generators the serial path builds.
struct WorkloadSource<'p> {
    profile: &'p WorkloadProfile,
    seed: u64,
}

impl LaneSource for WorkloadSource<'_> {
    type Stream = WorkloadGen;

    fn stream(&self, lane: usize) -> WorkloadGen {
        WorkloadGen::new(self.profile, CoreId::new(lane as u16), self.seed)
    }
}

/// Sharding knobs for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardParams {
    /// Total threads the run may use, consumer included. `1` (or `0`) runs
    /// the chunked feed inline on the calling thread — same merge path, no
    /// workers; `t >= 2` spawns `min(t - 1, lanes)` producer threads.
    pub threads: usize,
    /// Records per lane per epoch (the barrier spacing). Larger epochs
    /// amortize handoff synchronization; smaller ones bound lookahead
    /// memory and merge latency.
    pub epoch_records: u64,
    /// Chunks a producer may run ahead of the consumer on each lane.
    pub lookahead_epochs: usize,
}

impl ShardParams {
    /// Sharding at `threads` threads with the default epoch geometry.
    pub const fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            epoch_records: 4096,
            lookahead_epochs: 4,
        }
    }
}

impl Default for ShardParams {
    fn default() -> Self {
        Self::with_threads(crate::runner::default_threads())
    }
}

/// One lane's accumulated accounting over an epoch (or a whole run): the
/// mergeable delta exchanged at epoch barriers. Fields add under
/// [`LaneDelta::merge`], so any grouping of epochs and lanes folds to the
/// same total — the conservation law the merge tests pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneDelta {
    /// Records generated/consumed.
    pub records: u64,
    /// Store records among them.
    pub writes: u64,
    /// Total compute-gap instructions attached to the records.
    pub compute: u64,
    /// Wrapping sum of raw virtual addresses: an order-insensitive content
    /// check that catches dropped, duplicated, or corrupted records.
    pub vaddr_check: u64,
}

impl LaneDelta {
    /// Accounts one record.
    fn note(&mut self, rec: &TraceRecord) {
        self.records += 1;
        self.writes += u64::from(rec.kind.is_write());
        self.compute += u64::from(rec.compute);
        self.vaddr_check = self.vaddr_check.wrapping_add(rec.vaddr.value() | 1);
    }

    /// Folds another delta into this one. Addition is associative and
    /// commutative, but the sharded runner still merges in (epoch, lane)
    /// order so the rolling checksum — which *is* order-sensitive — comes
    /// out identical at every thread count.
    pub fn merge(&mut self, other: &LaneDelta) {
        self.records += other.records;
        self.writes += other.writes;
        self.compute += other.compute;
        self.vaddr_check = self.vaddr_check.wrapping_add(other.vaddr_check);
    }
}

/// What the sharded run did, beyond the (bit-identical) simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Workload lanes (= simulated cores).
    pub lanes: usize,
    /// Producer threads actually spawned (0 = inline chunked mode).
    pub producer_threads: usize,
    /// Records per lane per epoch.
    pub epoch_records: u64,
    /// Epoch barriers crossed (complete lane rows merged).
    pub epochs_merged: u64,
    /// All lanes' deltas folded together: `records` must equal
    /// `lanes * accesses_per_core` for a complete run.
    pub merged: LaneDelta,
    /// Rolling digest over every (epoch, lane, delta) in merge order; a
    /// pure function of the workload streams, so it is invariant across
    /// thread counts and epoch-aligned at any lane interleave.
    pub checksum: u64,
    /// Producer-vs-consumer delta disagreements (0 on a healthy run).
    pub delta_mismatches: u64,
}

/// One pre-generated epoch of a lane's stream plus its producer-side delta.
struct Chunk {
    records: Vec<TraceRecord>,
    delta: LaneDelta,
}

/// Generates the next `count` records of `gen` into a recycled buffer.
fn fill_chunk<G: RecordStream>(gen: &mut G, mut buf: Vec<TraceRecord>, count: u64) -> Chunk {
    buf.clear();
    let mut delta = LaneDelta::default();
    for _ in 0..count {
        let rec = gen.next_record();
        delta.note(&rec);
        buf.push(rec);
    }
    Chunk {
        records: buf,
        delta,
    }
}

#[derive(Default)]
struct LaneQueueState {
    /// Chunks generated but not yet consumed, oldest first.
    filled: VecDeque<Chunk>,
    /// Drained record buffers returned by the consumer for reuse, so the
    /// steady state allocates nothing.
    spare: Vec<Vec<TraceRecord>>,
}

/// Wakes producers when the consumer frees a slot in *any* lane's queue.
///
/// One version counter shared by every queue of the run. A producer owning
/// several lanes must never block on one particular full lane: the consumer
/// might be starved on a *different* lane of the same producer (the run
/// loop consumes lanes in timing order, e.g. pulling many records from lane
/// 0 while priming), and neither side would ever advance. Instead producers
/// sweep their lanes with [`LaneQueue::try_acquire_buffer`] and sleep here
/// only when every owned lane is at its lookahead bound — a state the
/// consumer is guaranteed to break, because the lane it wants next cannot
/// be both empty (it is waiting on it) and full (its producer sleeps).
#[derive(Default)]
struct SpaceSignal {
    version: Mutex<u64>,
    changed: Condvar,
}

impl SpaceSignal {
    fn version(&self) -> u64 {
        *self.version.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumer side: a slot was freed; wake every sweeping producer.
    fn bump(&self) {
        let mut v = self.version.lock().unwrap_or_else(PoisonError::into_inner);
        *v = v.wrapping_add(1);
        drop(v);
        self.changed.notify_all();
    }

    /// Producer side: sleeps until the version moves past the one read
    /// *before* the fruitless sweep — a pop landing mid-sweep is seen here
    /// as an immediate return, never a lost wakeup.
    fn wait_past(&self, seen: u64) {
        let mut v = self.version.lock().unwrap_or_else(PoisonError::into_inner);
        while *v == seen {
            v = self.changed.wait(v).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The bounded handoff between one lane's producer and the consumer.
struct LaneQueue {
    state: Mutex<LaneQueueState>,
    /// Consumer waits here for a chunk.
    can_pop: Condvar,
}

impl LaneQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new(LaneQueueState::default()),
            can_pop: Condvar::new(),
        }
    }

    /// Locks the queue. A poisoned lock is recovered rather than unwrapped:
    /// the data is plain bookkeeping, and any torn state a panicking thread
    /// could leave behind is caught downstream by the epoch delta check.
    fn lock(&self) -> MutexGuard<'_, LaneQueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Producer side: if fewer than `lookahead` chunks are queued, hands
    /// back a recycled buffer to fill; `None` means the lane is at its
    /// bound right now (never blocks — see [`SpaceSignal`]).
    fn try_acquire_buffer(&self, lookahead: usize) -> Option<Vec<TraceRecord>> {
        let mut st = self.lock();
        if st.filled.len() >= lookahead.max(1) {
            return None;
        }
        Some(st.spare.pop().unwrap_or_default())
    }

    /// Producer side: publishes a filled chunk.
    fn push(&self, chunk: Chunk) {
        self.lock().filled.push_back(chunk);
        self.can_pop.notify_one();
    }

    /// Consumer side: blocks until the lane's next chunk is available.
    /// Producers generate exactly as many chunks as the consumer pops, so
    /// no end-of-stream marker is needed.
    fn pop(&self, space: &SpaceSignal) -> Chunk {
        let mut st = self.lock();
        loop {
            if let Some(chunk) = st.filled.pop_front() {
                drop(st);
                space.bump();
                return chunk;
            }
            st = self
                .can_pop
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Consumer side: returns a drained buffer for reuse.
    fn recycle(&self, buf: Vec<TraceRecord>) {
        self.lock().spare.push(buf);
    }
}

/// One epoch row being collected: deltas from each lane, merged once all
/// have arrived.
struct EpochSlot {
    missing: usize,
    deltas: Vec<Option<LaneDelta>>,
}

impl EpochSlot {
    fn new(lanes: usize) -> Self {
        Self {
            missing: lanes,
            deltas: (0..lanes).map(|_| None).collect(),
        }
    }
}

/// The epoch-barrier merge: collects per-(lane, epoch) deltas as the
/// consumer finishes chunks — in whatever interleave the scheduler's timing
/// produces — and folds complete epochs in (epoch, lane) order, so the
/// merged totals and checksum are deterministic at any thread count.
struct EpochMerge {
    lanes: usize,
    /// Epoch rows still collecting; front is `base_epoch`.
    window: VecDeque<EpochSlot>,
    base_epoch: u64,
    merged: LaneDelta,
    epochs_merged: u64,
    hasher: FxHasher,
    delta_mismatches: u64,
}

impl EpochMerge {
    fn new(lanes: usize) -> Self {
        Self {
            lanes,
            window: VecDeque::new(),
            base_epoch: 0,
            merged: LaneDelta::default(),
            epochs_merged: 0,
            hasher: FxHasher::default(),
            delta_mismatches: 0,
        }
    }

    /// Records lane `lane`'s completed epoch `epoch`, then merges every
    /// epoch whose full lane row has arrived.
    fn complete(&mut self, lane: usize, epoch: u64, delta: LaneDelta) {
        let Some(offset) = epoch.checked_sub(self.base_epoch) else {
            debug_assert!(false, "epoch {epoch} completed twice");
            self.delta_mismatches += 1;
            return;
        };
        let offset = offset as usize;
        while self.window.len() <= offset {
            self.window.push_back(EpochSlot::new(self.lanes));
        }
        match self
            .window
            .get_mut(offset)
            .and_then(|slot| slot.deltas.get_mut(lane))
        {
            Some(cell @ None) => {
                *cell = Some(delta);
                if let Some(slot) = self.window.get_mut(offset) {
                    slot.missing -= 1;
                }
            }
            _ => {
                debug_assert!(false, "lane {lane} reported epoch {epoch} twice");
                self.delta_mismatches += 1;
                return;
            }
        }
        // Fold every complete epoch at the front of the window, lane 0
        // first — the deterministic merge order.
        while self.window.front().is_some_and(|slot| slot.missing == 0) {
            if let Some(slot) = self.window.pop_front() {
                for (lane, delta) in slot.deltas.iter().enumerate() {
                    let Some(delta) = delta else { continue };
                    self.merged.merge(delta);
                    self.hasher.write_u64(self.base_epoch);
                    self.hasher.write_u64(lane as u64);
                    self.hasher.write_u64(delta.records);
                    self.hasher.write_u64(delta.writes);
                    self.hasher.write_u64(delta.compute);
                    self.hasher.write_u64(delta.vaddr_check);
                }
            }
            self.base_epoch += 1;
            self.epochs_merged += 1;
        }
    }
}

/// Inline chunk generation for the single-threaded mode: the same chunked
/// feed and merge path, with chunks produced on demand by the consumer.
struct InlineLane<G: RecordStream> {
    gen: G,
    remaining: u64,
    spare: Vec<Vec<TraceRecord>>,
}

/// Where a lane's next chunk comes from.
enum ChunkSource<'q, G: RecordStream> {
    Inline(Vec<InlineLane<G>>),
    Queues {
        queues: &'q [LaneQueue],
        space: &'q SpaceSignal,
    },
}

/// Per-lane consumption state.
struct Cursor {
    records: Vec<TraceRecord>,
    pos: usize,
    /// Producer-side delta of the current chunk.
    produced: LaneDelta,
    /// Consumer-side re-tally of the current chunk.
    consumed: LaneDelta,
    /// Epoch index of the current chunk.
    epoch: u64,
}

impl Cursor {
    fn new() -> Self {
        Self {
            records: Vec::new(),
            pos: 0,
            produced: LaneDelta::default(),
            consumed: LaneDelta::default(),
            epoch: 0,
        }
    }
}

/// The sharded [`RecordFeed`]: hands each lane's pre-generated records to
/// the run loop and drives the epoch-barrier merge as chunks drain.
struct ShardFeed<'q, G: RecordStream> {
    source: ChunkSource<'q, G>,
    cursors: Vec<Cursor>,
    epoch_records: u64,
    merge: EpochMerge,
}

impl<'q, G: RecordStream> ShardFeed<'q, G> {
    fn new(source: ChunkSource<'q, G>, lanes: usize, epoch_records: u64) -> Self {
        Self {
            source,
            cursors: (0..lanes).map(|_| Cursor::new()).collect(),
            epoch_records,
            merge: EpochMerge::new(lanes),
        }
    }

    /// Installs lane `lane`'s next chunk into its cursor.
    fn refill(&mut self, lane: usize) {
        let chunk = match &mut self.source {
            ChunkSource::Queues { queues, space } => match queues.get(lane) {
                Some(q) => q.pop(space),
                None => {
                    debug_assert!(false, "no queue for lane {lane}");
                    return;
                }
            },
            ChunkSource::Inline(lanes) => match lanes.get_mut(lane) {
                Some(il) => {
                    let buf = il.spare.pop().unwrap_or_default();
                    let count = il.remaining.min(self.epoch_records);
                    il.remaining -= count;
                    fill_chunk(&mut il.gen, buf, count)
                }
                None => {
                    debug_assert!(false, "no inline generator for lane {lane}");
                    return;
                }
            },
        };
        if let Some(cur) = self.cursors.get_mut(lane) {
            cur.records = chunk.records;
            cur.produced = chunk.delta;
            cur.consumed = LaneDelta::default();
            cur.pos = 0;
        }
    }

    /// Closes the current chunk of `lane`: verifies the consumer's re-tally
    /// against the producer's delta, reports the epoch to the merge, and
    /// recycles the buffer.
    fn close_chunk(&mut self, lane: usize) {
        let Some(cur) = self.cursors.get_mut(lane) else {
            return;
        };
        let consumed = cur.consumed;
        let produced = cur.produced;
        let epoch = cur.epoch;
        let buf = std::mem::take(&mut cur.records);
        cur.epoch += 1;
        if produced != consumed {
            debug_assert!(false, "lane {lane} epoch {epoch}: producer delta {produced:?} != consumer delta {consumed:?}");
            self.merge.delta_mismatches += 1;
        }
        self.merge.complete(lane, epoch, consumed);
        match &mut self.source {
            ChunkSource::Queues { queues, .. } => {
                if let Some(q) = queues.get(lane) {
                    q.recycle(buf);
                }
            }
            ChunkSource::Inline(lanes) => {
                if let Some(il) = lanes.get_mut(lane) {
                    il.spare.push(buf);
                }
            }
        }
    }

    /// Seals the run into its report. All chunks have drained by now (the
    /// run loop consumes exactly what the producers generate), so the merge
    /// window is empty unless a handoff tore.
    fn finish(mut self, producer_threads: usize) -> ShardReport {
        self.merge.delta_mismatches += self.window_leftovers();
        ShardReport {
            lanes: self.cursors.len(),
            producer_threads,
            epoch_records: self.epoch_records,
            epochs_merged: self.merge.epochs_merged,
            merged: self.merge.merged,
            checksum: self.merge.hasher.finish(),
            delta_mismatches: self.merge.delta_mismatches,
        }
    }

    fn window_leftovers(&self) -> u64 {
        self.merge
            .window
            .iter()
            .map(|slot| slot.deltas.iter().flatten().count() as u64)
            .sum()
    }
}

impl<G: RecordStream> RecordFeed for ShardFeed<'_, G> {
    fn next(&mut self, lane: usize) -> TraceRecord {
        let exhausted = match self.cursors.get(lane) {
            Some(cur) => cur.pos >= cur.records.len(),
            None => {
                debug_assert!(false, "feed polled for a lane it does not own");
                return TraceRecord::load(0, VirtAddr::new(0), 0);
            }
        };
        if exhausted {
            self.refill(lane);
        }
        let (rec, drained) = match self.cursors.get_mut(lane) {
            Some(cur) => match cur.records.get(cur.pos) {
                Some(rec) => {
                    let rec = *rec;
                    cur.pos += 1;
                    cur.consumed.note(&rec);
                    (rec, cur.pos >= cur.records.len())
                }
                None => {
                    debug_assert!(false, "lane {lane} over-consumed its stream");
                    (TraceRecord::load(0, VirtAddr::new(0), 0), false)
                }
            },
            None => (TraceRecord::load(0, VirtAddr::new(0), 0), false),
        };
        if drained {
            // Close eagerly so the final epoch merges without an extra poll
            // and the buffer goes back to the producer immediately.
            self.close_chunk(lane);
        }
        rec
    }

    /// Hands the run loop the rest of the lane's current producer chunk (up
    /// to `max` records) in one call: one queue handoff per epoch instead of
    /// one lock round-trip per record. Record order, the consumer re-tally,
    /// and epoch close points are exactly those of the scalar path.
    fn next_chunk(&mut self, lane: usize, buf: &mut Vec<TraceRecord>, max: u64) -> usize {
        if max == 0 {
            return 0;
        }
        let exhausted = match self.cursors.get(lane) {
            Some(cur) => cur.pos >= cur.records.len(),
            None => {
                debug_assert!(false, "feed polled for a lane it does not own");
                return 0;
            }
        };
        if exhausted {
            self.refill(lane);
        }
        let (count, drained) = match self.cursors.get_mut(lane) {
            Some(cur) => {
                let left = cur.records.len() - cur.pos;
                let count = left.min(usize::try_from(max).unwrap_or(usize::MAX));
                let Some(run) = cur.records.get(cur.pos..cur.pos + count) else {
                    debug_assert!(false, "lane {lane} over-consumed its stream");
                    return 0;
                };
                buf.extend_from_slice(run);
                for rec in run {
                    cur.consumed.note(rec);
                }
                cur.pos += count;
                (count, cur.pos >= cur.records.len())
            }
            None => (0, false),
        };
        if drained {
            self.close_chunk(lane);
        }
        count
    }
}

/// One producer worker: owns a dealt subset of lanes, builds their
/// generators (setup parallelism comes free), and sweeps epoch chunks into
/// the bounded per-lane queues until every owned lane's stream is fully
/// generated. A sweep skips lanes at their lookahead bound — blocking on
/// one full lane could deadlock against a consumer starved on another —
/// and only a sweep with no progress at all sleeps, on [`SpaceSignal`].
fn producer<L: LaneSource>(
    lane_ids: Vec<usize>,
    source: &L,
    accesses_per_lane: u64,
    queues: &[LaneQueue],
    space: &SpaceSignal,
    shard: ShardParams,
) {
    let mut lanes: Vec<(usize, L::Stream, u64)> = lane_ids
        .into_iter()
        .map(|i| (i, source.stream(i), accesses_per_lane))
        .collect();
    let epoch = shard.epoch_records.max(1);
    while !lanes.is_empty() {
        // Read the version *before* sweeping: a pop landing mid-sweep makes
        // the wait below return immediately instead of being lost.
        let seen = space.version();
        let mut progressed = false;
        lanes.retain_mut(|(i, gen, remaining)| {
            let Some(q) = queues.get(*i) else {
                debug_assert!(false, "producer dealt a lane with no queue");
                return false;
            };
            let Some(buf) = q.try_acquire_buffer(shard.lookahead_epochs) else {
                return true; // lane full right now; revisit next sweep
            };
            progressed = true;
            let count = (*remaining).min(epoch);
            q.push(fill_chunk(gen, buf, count));
            *remaining -= count;
            *remaining > 0
        });
        if !progressed && !lanes.is_empty() {
            space.wait_past(seen);
        }
    }
}

/// Runs `system` sharded: per-lane record generation on producer threads
/// (or inline when `shard.threads <= 1`), the shared-state commit loop on
/// the calling thread, and deltas merged at epoch barriers in lane order.
///
/// The [`SystemOutcome`] — and every statistic the system accumulates — is
/// bit-identical to [`System::run`] with the same arguments, at any thread
/// count. See the module docs for why.
pub fn run_system_sharded<T: Tracer>(
    system: &mut System<T>,
    profile: &WorkloadProfile,
    accesses_per_core: u64,
    seed: u64,
    shard: &ShardParams,
) -> (SystemOutcome, ShardReport) {
    let source = WorkloadSource { profile, seed };
    run_system_sharded_tapped(system, &source, accesses_per_core, shard, &mut NullTap)
}

/// [`run_system_sharded`] generalized over the lane streams and a
/// [`ServiceTap`]: the request-serving plane feeds admission-planned
/// streams in through `source` and observes completions through `tap`,
/// over the same producer/consumer machinery and epoch-barrier merge.
/// With [`WorkloadSource`]-equivalent streams and [`NullTap`] this *is*
/// `run_system_sharded` — the closed-loop spelling delegates here.
pub fn run_system_sharded_tapped<T: Tracer, L: LaneSource, S: ServiceTap>(
    system: &mut System<T>,
    source: &L,
    accesses_per_core: u64,
    shard: &ShardParams,
    tap: &mut S,
) -> (SystemOutcome, ShardReport) {
    let lanes = system.core_count();
    let epoch = shard.epoch_records.max(1);
    let producers = if shard.threads <= 1 {
        0
    } else {
        (shard.threads - 1).min(lanes)
    };

    if producers == 0 {
        let inline: Vec<InlineLane<L::Stream>> = (0..lanes)
            .map(|i| InlineLane {
                gen: source.stream(i),
                remaining: accesses_per_core,
                spare: Vec::new(),
            })
            .collect();
        let mut feed = ShardFeed::new(ChunkSource::Inline(inline), lanes, epoch);
        let outcome = system.run_with_feed_tapped(&mut feed, accesses_per_core, tap);
        return (outcome, feed.finish(0));
    }

    let queues: Vec<LaneQueue> = (0..lanes).map(|_| LaneQueue::new()).collect();
    let queues = queues.as_slice();
    let space = SpaceSignal::default();
    let space = &space;
    std::thread::scope(|scope| {
        // Deal lanes round-robin across producers — the PR-1 pool's rule.
        for p in 0..producers {
            let ids: Vec<usize> = (p..lanes).step_by(producers).collect();
            let shard = *shard;
            scope.spawn(move || producer(ids, source, accesses_per_core, queues, space, shard));
        }
        let mut feed =
            ShardFeed::<L::Stream>::new(ChunkSource::Queues { queues, space }, lanes, epoch);
        let outcome = system.run_with_feed_tapped(&mut feed, accesses_per_core, tap);
        (outcome, feed.finish(producers))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_baselines::RandomStatic;
    use silcfm_trace::{profiles, PlacementPolicy};
    use silcfm_types::{AddressSpace, SystemConfig};

    fn space() -> AddressSpace {
        AddressSpace::new(2048 * 2048, 4 * 2048 * 2048)
    }

    fn system() -> System {
        System::new(
            SystemConfig::small(),
            space(),
            PlacementPolicy::RandomSeeded(1),
            Box::new(RandomStatic::new(space())),
        )
    }

    fn profile() -> WorkloadProfile {
        profiles::scaled(profiles::by_name("dealii").unwrap(), 0.1)
    }

    #[test]
    fn sharded_outcome_matches_serial_at_every_thread_count() {
        let profile = profile();
        let mut serial_sys = system();
        let serial = serial_sys.run(&profile, 2_000, 42);
        let serial_tally = *serial_sys.tally();

        let mut checksums = Vec::new();
        for threads in [0, 1, 2, 3, 5, 9] {
            let shard = ShardParams {
                threads,
                epoch_records: 96,
                lookahead_epochs: 3,
            };
            let mut sys = system();
            let (outcome, report) = run_system_sharded(&mut sys, &profile, 2_000, 42, &shard);
            assert_eq!(outcome, serial, "threads={threads}");
            assert_eq!(*sys.tally(), serial_tally, "threads={threads}");
            assert_eq!(report.delta_mismatches, 0);
            assert_eq!(report.merged.records, 2_000 * report.lanes as u64);
            assert_eq!(report.epochs_merged, 2_000u64.div_ceil(96));
            checksums.push(report.checksum);
        }
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "shard checksum must be thread-count invariant: {checksums:?}"
        );
    }

    #[test]
    fn lane_deltas_merge_conservatively() {
        let profile = profile();
        let shard = ShardParams {
            threads: 2,
            epoch_records: 64,
            lookahead_epochs: 2,
        };
        let mut sys = system();
        let (_, report) = run_system_sharded(&mut sys, &profile, 777, 7, &shard);
        // Whole-run totals survive any epoch/lane grouping.
        assert_eq!(report.merged.records, 777 * report.lanes as u64);
        assert!(report.merged.writes <= report.merged.records);
        assert!(report.merged.vaddr_check != 0);
        // Re-merging two independent copies doubles every field.
        let mut doubled = report.merged;
        doubled.merge(&report.merged);
        assert_eq!(doubled.records, 2 * report.merged.records);
        assert_eq!(doubled.writes, 2 * report.merged.writes);
        assert_eq!(doubled.compute, 2 * report.merged.compute);
    }

    #[test]
    fn epoch_sizes_do_not_change_results_only_checksums() {
        let profile = profile();
        let mut base_sys = system();
        let base = base_sys.run(&profile, 1_500, 11);
        for epoch_records in [1, 7, 100, 1_500, 10_000] {
            let shard = ShardParams {
                threads: 2,
                epoch_records,
                lookahead_epochs: 1,
            };
            let mut sys = system();
            let (outcome, report) = run_system_sharded(&mut sys, &profile, 1_500, 11, &shard);
            assert_eq!(outcome, base, "epoch={epoch_records}");
            assert_eq!(report.delta_mismatches, 0);
            assert_eq!(
                report.epochs_merged,
                1_500u64.div_ceil(epoch_records.max(1))
            );
        }
    }
}
