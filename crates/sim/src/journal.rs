//! Crash-safe experiment journal: an append-only record of finished grid
//! jobs that lets a killed run resume without repeating work.
//!
//! The format is a plain text file, one line per record:
//!
//! * a header line, `silcfm-journal v1 grid=<hex>`, binding the journal to
//!   one exact job grid (the digest covers every job's full configuration);
//! * one `job` line per finished job, carrying the complete [`RunResult`]
//!   in whitespace-separated fields. Floats are written as the hex of their
//!   IEEE-754 bits, so a journal round-trip is *bit-identical* — a resumed
//!   grid's aggregate equals the uninterrupted run's byte for byte;
//! * optionally one `lat` line per finished job (traced grids only),
//!   carrying the job's per-class [`LatencyBreakdown`] as sparse sketch
//!   encodings. The sketch codec is bit-exact and sketch merges are
//!   order-invariant, so resumed percentile reports — per job or merged
//!   across the grid — are byte-identical to an uninterrupted run's.
//!
//! Every append is flushed before the runner moves on (a `lat` line flushes
//! together with its `job` line), so a crash loses at most the in-flight
//! record. The reader tolerates exactly that: a torn final line is
//! discarded, anything else malformed is an error. A `lat` line whose `job`
//! line never landed is ignored on resume — the job simply re-runs.

// silcfm-lint: allow-file(T1) -- the only concurrency here is the process-wide
// intern pool below: an idempotent, leaked String -> &'static str map whose
// lock order cannot affect simulation results.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::hash::{Hash, Hasher};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use silcfm_obs::LatencyBreakdown;
use silcfm_types::{FxHashMap, FxHasher, SilcFmError};

use crate::metrics::{RunResult, TrafficTally};
use crate::runner::Job;

/// Digest binding a journal to one job grid. Any change to the grid — a
/// workload, a scheme parameter, a seed — changes the digest and makes old
/// journals unusable (resuming against a different grid would splice
/// incompatible results).
pub fn grid_digest(jobs: &[Job]) -> u64 {
    let mut h = FxHasher::default();
    jobs.len().hash(&mut h);
    for job in jobs {
        // Jobs are plain-old-data with stable `Debug` output; hashing the
        // rendering covers every field without a bespoke Hash impl over f64.
        format!("{job:?}").hash(&mut h);
    }
    h.finish()
}

/// Returns the interned `&'static str` for `s`.
///
/// [`silcfm_types::SchemeStats`] detail keys are `&'static str` so the hot
/// path never allocates; a journal read must rebuild them from file text.
/// The intern pool leaks one copy of each *distinct* key ever read — keys
/// come from the fixed registry in `crates/lint/stat_keys.txt`, so the pool
/// is small and bounded.
fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<FxHashMap<String, &'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(FxHashMap::default()));
    let Ok(mut pool) = pool.lock() else {
        // A poisoned intern pool cannot corrupt data; fall back to leaking.
        return Box::leak(s.to_string().into_boxed_str());
    };
    if let Some(k) = pool.get(s) {
        return k;
    }
    let k: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(s.to_string(), k);
    k
}

fn f64_to_field(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// One journal line for a finished job. Tokens never contain whitespace:
/// scheme/workload labels are fixed identifiers and numbers are decimal or
/// hex.
fn encode(index: usize, r: &RunResult) -> String {
    use core::fmt::Write as _;
    let mut line = format!(
        "job {index} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        r.scheme,
        r.workload,
        r.cycles,
        r.instructions,
        r.llc_misses,
        f64_to_field(r.access_rate),
        r.traffic.nm_demand,
        r.traffic.fm_demand,
        r.traffic.nm_other,
        r.traffic.fm_other,
        f64_to_field(r.energy_pj),
        r.scheme_stats.accesses,
        r.scheme_stats.serviced_from_nm,
        r.scheme_stats.subblocks_moved,
        r.scheme_stats.blocks_migrated,
        f64_to_field(r.mpki),
        r.footprint_bytes,
        r.scheme_stats.details.len(),
    );
    for (key, value) in &r.scheme_stats.details {
        let _ = write!(line, " {key} {}", f64_to_field(*value));
    }
    line
}

/// Parses one `job` line (sans the leading `job` token). Returns `None` on
/// any shortfall or malformed field — the caller decides whether that means
/// "torn tail" (tolerated) or "corrupt" (error).
fn decode(tokens: &[&str]) -> Option<(usize, RunResult)> {
    let mut it = tokens.iter();
    let mut next = || it.next().copied();
    let index: usize = next()?.parse().ok()?;
    let scheme = next()?.to_string();
    let workload = next()?.to_string();
    let int = |s: Option<&str>| s?.parse::<u64>().ok();
    let float = |s: Option<&str>| u64::from_str_radix(s?, 16).ok().map(f64::from_bits);
    let cycles = int(next())?;
    let instructions = int(next())?;
    let llc_misses = int(next())?;
    let access_rate = float(next())?;
    let traffic = TrafficTally {
        nm_demand: int(next())?,
        fm_demand: int(next())?,
        nm_other: int(next())?,
        fm_other: int(next())?,
    };
    let energy_pj = float(next())?;
    let mut scheme_stats = silcfm_types::SchemeStats {
        accesses: int(next())?,
        serviced_from_nm: int(next())?,
        subblocks_moved: int(next())?,
        blocks_migrated: int(next())?,
        ..Default::default()
    };
    let mpki = float(next())?;
    let footprint_bytes = int(next())?;
    let ndetails = int(next())? as usize;
    for _ in 0..ndetails {
        let key = intern(next()?);
        let value = float(next())?;
        scheme_stats.details.push((key, value));
    }
    if it.next().is_some() {
        return None; // trailing junk: treat as malformed
    }
    Some((
        index,
        RunResult {
            scheme,
            workload,
            cycles,
            instructions,
            llc_misses,
            access_rate,
            traffic,
            energy_pj,
            scheme_stats,
            mpki,
            footprint_bytes,
        },
    ))
}

/// One journal line for a finished job's latency breakdown: `lat <index>`
/// followed by the sparse per-class sketch fields.
fn encode_lat(index: usize, lat: &LatencyBreakdown) -> String {
    let mut line = format!("lat {index}");
    lat.encode(&mut line);
    line
}

/// Parses one `lat` line (sans the leading `lat` token).
fn decode_lat(tokens: &[&str]) -> Option<(usize, LatencyBreakdown)> {
    let mut it = tokens.iter().copied();
    let index: usize = it.next()?.parse().ok()?;
    let lat = LatencyBreakdown::decode(&mut it)?;
    if it.next().is_some() {
        return None; // trailing junk: treat as malformed
    }
    Some((index, lat))
}

fn header_line(digest: u64) -> String {
    format!("silcfm-journal v1 grid={digest:016x}")
}

/// The write side of a journal: created fresh or reopened for resume, it
/// appends one flushed line per finished job.
#[derive(Debug)]
pub struct JournalWriter {
    out: BufWriter<File>,
}

impl JournalWriter {
    /// Creates (truncating) a journal for a grid with the given digest and
    /// writes the header.
    ///
    /// # Errors
    ///
    /// Returns [`SilcFmError::Journal`] on any I/O failure.
    pub fn create(path: &Path, digest: u64) -> Result<Self, SilcFmError> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        writeln!(out, "{}", header_line(digest))?;
        out.flush()?;
        Ok(Self { out })
    }

    /// Appends one finished job and flushes, so a crash after this call
    /// never loses the record.
    ///
    /// # Errors
    ///
    /// Returns [`SilcFmError::Journal`] on any I/O failure.
    pub fn append(&mut self, index: usize, result: &RunResult) -> Result<(), SilcFmError> {
        writeln!(self.out, "{}", encode(index, result))?;
        self.out.flush()?;
        Ok(())
    }

    /// Appends one finished traced job — its `lat` line immediately
    /// followed by its `job` line — in a single flush. The `job` line seals
    /// the record: a crash between the two leaves a `lat` orphan that
    /// resume ignores, so the job re-runs rather than resuming half-done.
    ///
    /// # Errors
    ///
    /// Returns [`SilcFmError::Journal`] on any I/O failure.
    pub fn append_traced(
        &mut self,
        index: usize,
        result: &RunResult,
        lat: &LatencyBreakdown,
    ) -> Result<(), SilcFmError> {
        writeln!(self.out, "{}", encode_lat(index, lat))?;
        writeln!(self.out, "{}", encode(index, result))?;
        self.out.flush()?;
        Ok(())
    }
}

/// Reads a journal back: validates the header against `digest`, collects
/// the finished jobs, and reopens the file in append mode so the run can
/// continue where it stopped. A torn final line (no trailing newline, or a
/// line that stops mid-field) is discarded silently — that is the crash the
/// journal exists to survive.
///
/// # Errors
///
/// Returns [`SilcFmError::Journal`] when the file is unreadable, the header
/// names a different grid, or an interior line is malformed.
pub fn resume(
    path: &Path,
    digest: u64,
) -> Result<(JournalWriter, BTreeMap<usize, RunResult>), SilcFmError> {
    let (writer, done, _) = resume_traced(path, digest)?;
    Ok((writer, done))
}

/// What [`resume_traced`] recovers from a journal: the reopened writer,
/// the finished jobs by index, and the per-job latency breakdowns whose
/// sealing `job` line landed.
pub type TracedResume = (
    JournalWriter,
    BTreeMap<usize, RunResult>,
    BTreeMap<usize, LatencyBreakdown>,
);

/// [`resume`], also returning the per-job [`LatencyBreakdown`]s recorded by
/// [`JournalWriter::append_traced`]. A `lat` line whose sealing `job` line
/// never landed (the crash window between the two) is dropped here, so a
/// job is "done" only when *both* of its records are intact.
///
/// # Errors
///
/// Returns [`SilcFmError::Journal`] when the file is unreadable, the header
/// names a different grid, or an interior line is malformed.
pub fn resume_traced(path: &Path, digest: u64) -> Result<TracedResume, SilcFmError> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    // Bytes past the last newline are the in-flight record of a crash;
    // they are the one loss the format tolerates.
    let complete_up_to = text.rfind('\n').map_or(0, |i| i + 1);
    let body = &text[..complete_up_to];
    let header_end = body
        .find('\n')
        .map(|i| i + 1)
        .ok_or_else(|| SilcFmError::journal("journal is empty (no header line)"))?;
    let header = body[..header_end].trim_end();
    if header != header_line(digest) {
        return Err(SilcFmError::journal(format!(
            "journal belongs to a different grid: found {header:?}, expected {:?}",
            header_line(digest)
        )));
    }
    let mut done = BTreeMap::new();
    let mut lats = BTreeMap::new();
    // Track the byte offset of the last intact record so the file can be
    // truncated back to a clean state before appending resumes. A `lat`
    // line does not advance the offset on its own: only its sealing `job`
    // line commits the pair, so an orphaned `lat` tail is healed away.
    let mut valid_up_to = header_end;
    let mut offset = header_end;
    let mut rest = body[header_end..].split_inclusive('\n').peekable();
    while let Some(raw) = rest.next() {
        let line = raw.trim_end_matches('\n');
        let tokens: Vec<&str> = line.split_whitespace().collect();
        enum Parsed {
            Job(usize, RunResult),
            Lat(usize, LatencyBreakdown),
        }
        let parsed = match tokens.split_first() {
            Some((&"job", fields)) => decode(fields).map(|(i, r)| Parsed::Job(i, r)),
            Some((&"lat", fields)) => decode_lat(fields).map(|(i, l)| Parsed::Lat(i, l)),
            _ => None,
        };
        offset += raw.len();
        match parsed {
            Some(Parsed::Job(index, result)) => {
                done.insert(index, result);
                valid_up_to = offset;
            }
            Some(Parsed::Lat(index, lat)) => {
                lats.insert(index, lat);
            }
            // A malformed *last* line can be a crash artifact and is
            // dropped; a malformed interior line cannot, and means
            // corruption the journal must not paper over.
            None if rest.peek().is_none() => break,
            None => {
                return Err(SilcFmError::journal(format!(
                    "malformed journal line: {line:?}"
                )))
            }
        }
    }
    // Keep only breakdowns whose job record sealed; orphans re-run.
    lats.retain(|index, _| done.contains_key(index));
    if valid_up_to < text.len() {
        // Heal the crash damage: cut the torn/malformed tail so appended
        // records start on a fresh line.
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_up_to as u64)?;
    }
    let file = OpenOptions::new().append(true).open(path)?;
    Ok((
        JournalWriter {
            out: BufWriter::new(file),
        },
        done,
        lats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_types::SchemeStats;

    fn result(cycles: u64) -> RunResult {
        RunResult {
            scheme: "silcfm".into(),
            workload: "milc".into(),
            cycles,
            instructions: 123_456,
            llc_misses: 789,
            access_rate: 0.8251,
            traffic: TrafficTally {
                nm_demand: 1,
                fm_demand: 2,
                nm_other: 3,
                fm_other: 4,
            },
            energy_pj: 1.5e9,
            scheme_stats: SchemeStats {
                accesses: 99,
                serviced_from_nm: 81,
                subblocks_moved: 7,
                blocks_migrated: 2,
                details: vec![("locks", 4.0), ("fault_poisoned", 0.125)],
            },
            mpki: 13.37,
            footprint_bytes: 1 << 21,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = option_env!("CARGO_TARGET_TMPDIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(std::env::temp_dir)
            .join("silcfm-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let path = tmp("roundtrip.journal");
        let mut w = JournalWriter::create(&path, 42).unwrap();
        w.append(0, &result(1000)).unwrap();
        w.append(3, &result(2000)).unwrap();
        drop(w);
        let (_w, done) = resume(&path, 42).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[&0], result(1000));
        assert_eq!(done[&3], result(2000));
    }

    #[test]
    fn float_bits_survive_exactly() {
        let mut r = result(1);
        r.access_rate = f64::from_bits(0x3FE9_9999_9999_999A); // 0.8 exactly as stored
        r.mpki = -0.0;
        let path = tmp("floatbits.journal");
        let mut w = JournalWriter::create(&path, 7).unwrap();
        w.append(0, &r).unwrap();
        drop(w);
        let (_w, done) = resume(&path, 7).unwrap();
        assert_eq!(done[&0].access_rate.to_bits(), r.access_rate.to_bits());
        assert_eq!(done[&0].mpki.to_bits(), r.mpki.to_bits());
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = tmp("torn.journal");
        let mut w = JournalWriter::create(&path, 9).unwrap();
        w.append(0, &result(500)).unwrap();
        drop(w);
        // Simulate a crash mid-append: partial line, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "job 1 silcfm milc 77").unwrap();
        drop(f);
        let (mut w, done) = resume(&path, 9).unwrap();
        assert_eq!(done.len(), 1, "torn record must be dropped");
        // Resume healed the tail: the re-appended record lands on a fresh
        // line and the journal reads back complete.
        w.append(1, &result(600)).unwrap();
        drop(w);
        let (_w, done) = resume(&path, 9).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[&1], result(600));
    }

    fn breakdown(seed: u64) -> LatencyBreakdown {
        use silcfm_types::AccessClass;
        let mut lat = LatencyBreakdown::new();
        for i in 0..40u64 {
            let class = AccessClass::ALL[(i % AccessClass::COUNT as u64) as usize];
            lat.record(class, seed + i * i);
        }
        lat
    }

    #[test]
    fn traced_roundtrip_is_bit_identical() {
        let path = tmp("traced-roundtrip.journal");
        let mut w = JournalWriter::create(&path, 11).unwrap();
        w.append_traced(0, &result(1000), &breakdown(3)).unwrap();
        w.append_traced(2, &result(2000), &breakdown(900)).unwrap();
        drop(w);
        let (_w, done, lats) = resume_traced(&path, 11).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(lats.len(), 2);
        for (index, seed) in [(0usize, 3u64), (2, 900)] {
            let mut want = String::new();
            breakdown(seed).encode(&mut want);
            let mut got = String::new();
            lats[&index].encode(&mut got);
            assert_eq!(got, want, "breakdown {index} must survive bit-exactly");
        }
    }

    #[test]
    fn orphan_lat_line_reruns_the_job() {
        let path = tmp("orphan-lat.journal");
        let mut w = JournalWriter::create(&path, 13).unwrap();
        w.append_traced(0, &result(500), &breakdown(1)).unwrap();
        drop(w);
        // Simulate a crash in the append_traced window: the `lat` line of
        // job 1 landed (with its newline) but the sealing `job` line did not.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "{}", encode_lat(1, &breakdown(7))).unwrap();
        drop(f);
        let (mut w, done, lats) = resume_traced(&path, 13).unwrap();
        assert_eq!(done.len(), 1, "unsealed job must re-run");
        assert_eq!(lats.len(), 1, "orphan lat must be dropped");
        // The orphan tail was healed away, so re-appending job 1 yields a
        // clean two-line record, not a duplicate-lat confusion.
        w.append_traced(1, &result(600), &breakdown(8)).unwrap();
        drop(w);
        let (_w, done, lats) = resume_traced(&path, 13).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[&1], result(600));
        let mut want = String::new();
        breakdown(8).encode(&mut want);
        let mut got = String::new();
        lats[&1].encode(&mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn plain_resume_tolerates_traced_records() {
        // A grid journaled by the traced runner can be resumed by the plain
        // one (the breakdowns are simply ignored) — the formats interleave.
        let path = tmp("mixed.journal");
        let mut w = JournalWriter::create(&path, 17).unwrap();
        w.append_traced(0, &result(100), &breakdown(2)).unwrap();
        w.append(1, &result(200)).unwrap();
        drop(w);
        let (_w, done) = resume(&path, 17).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[&0], result(100));
        assert_eq!(done[&1], result(200));
    }

    #[test]
    fn grid_mismatch_is_rejected() {
        let path = tmp("mismatch.journal");
        drop(JournalWriter::create(&path, 1).unwrap());
        let err = resume(&path, 2).unwrap_err();
        assert!(err.to_string().contains("different grid"), "{err}");
    }

    #[test]
    fn interior_corruption_is_an_error() {
        let path = tmp("corrupt.journal");
        let mut w = JournalWriter::create(&path, 5).unwrap();
        w.append(0, &result(500)).unwrap();
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "job zzz not-a-record").unwrap();
        writeln!(f, "{}", encode(1, &result(600))).unwrap();
        drop(f);
        let err = resume(&path, 5).unwrap_err();
        assert!(err.to_string().contains("malformed"), "{err}");
    }

    #[test]
    fn digest_is_sensitive_to_the_grid() {
        use crate::experiment::{RunParams, SchemeKind};
        use silcfm_trace::profiles;
        use silcfm_types::SystemConfig;
        let job = Job {
            profile: *profiles::by_name("milc").unwrap(),
            scheme: SchemeKind::NoNm,
            cfg: SystemConfig::small(),
            params: RunParams::smoke(),
        };
        let mut other = job;
        other.params.seed ^= 1;
        assert_ne!(grid_digest(&[job]), grid_digest(&[job, job]));
        assert_ne!(grid_digest(&[job]), grid_digest(&[other]));
        assert_eq!(grid_digest(&[job]), grid_digest(&[job]));
    }

    #[test]
    fn intern_returns_stable_pointers() {
        let a = intern("fault_masked");
        let b = intern("fault_masked");
        assert!(core::ptr::eq(a, b));
        assert_eq!(a, "fault_masked");
    }
}
