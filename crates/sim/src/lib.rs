//! Full-system simulation for the SILC-FM reproduction.
//!
//! Composes the substrate crates — ROB-window cores ([`silcfm_cpu`]), the
//! Table II cache hierarchy ([`silcfm_cache`]), synthetic workloads
//! ([`silcfm_trace`]), the HBM2/DDR3 timing models ([`silcfm_dram`]) — under
//! any [`silcfm_types::MemoryScheme`] (SILC-FM or a baseline), and measures
//! what the paper's figures report: execution time and speedup, the NM
//! access rate (Eq. 1), the demand-bandwidth split between memories
//! (Fig. 8), and energy / EDP.
//!
//! # Example
//!
//! ```
//! use silcfm_sim::{run, RunParams, SchemeKind};
//! use silcfm_trace::profiles;
//! use silcfm_types::SystemConfig;
//!
//! let cfg = SystemConfig::small();
//! let params = RunParams::smoke();
//! let profile = profiles::by_name("mcf").unwrap();
//! let base = run(profile, SchemeKind::NoNm, &cfg, &params);
//! let silc = run(profile, SchemeKind::silcfm(), &cfg, &params);
//! assert!(silc.cycles > 0 && base.cycles > 0);
//! ```

pub mod experiment;
pub mod journal;
pub mod metrics;
pub mod observe;
pub mod report;
pub mod runner;
pub mod shard;
pub mod system;

pub use experiment::{
    run, run_faulted, run_faulted_traced, run_metrics_only, run_sampled, run_sampled_lean,
    run_sharded, run_sharded_faulted, run_sharded_traced, run_traced, FaultParams, RunParams,
    SchemeKind, TraceParams,
};
pub use metrics::{RunResult, TrafficTally};
pub use observe::RunObs;
pub use report::{format_table, Row};
pub use runner::{
    run_grid, run_grid_journaled, run_grid_journaled_sharded, run_grid_serial, run_grid_sharded,
    run_grid_traced, run_grid_traced_journaled, ExperimentGrid, Job,
};
pub use shard::{
    run_system_sharded, run_system_sharded_tapped, LaneSource, RecordStream, ShardParams,
    ShardReport,
};
pub use system::{NullTap, RecordFeed, ServiceTap, System};
