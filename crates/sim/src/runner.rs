//! Sharded parallel execution of experiment grids.
//!
//! Every figure harness runs the same shape of computation: a grid of
//! (workload profile × scheme × configuration point) simulations, each
//! completely independent of the others. This module dispatches that grid
//! across a `std::thread` worker pool with work stealing and returns results
//! in grid order, **bit-identical** to running the jobs serially:
//!
//! * each [`Job`] is self-contained (its own profile, scheme, config and
//!   seed), so execution order cannot leak into results;
//! * per-job seeds are derived deterministically from a base seed and the
//!   job's grid index via [`SplitMix64`](silcfm_types::rng::SplitMix64), so
//!   regridding or resharding never changes any individual run;
//! * workers tag each result with its job index and the pool reassembles
//!   them in index order, so aggregate output is a pure function of the grid.
//!
//! # Example
//!
//! ```
//! use silcfm_sim::runner::{ExperimentGrid, run_grid, run_grid_serial};
//! use silcfm_sim::{RunParams, SchemeKind};
//! use silcfm_trace::profiles;
//! use silcfm_types::SystemConfig;
//!
//! let grid = ExperimentGrid::new(SystemConfig::small(), RunParams::smoke())
//!     .workload(profiles::by_name("mcf").unwrap())
//!     .scheme(SchemeKind::NoNm)
//!     .scheme(SchemeKind::silcfm());
//! let jobs = grid.jobs();
//! let parallel = run_grid(&jobs, 2);
//! let serial = run_grid_serial(&jobs);
//! for (p, s) in parallel.iter().zip(&serial) {
//!     assert_eq!(p.cycles, s.cycles);
//!     assert_eq!(p.traffic, s.traffic);
//! }
//! ```

use std::collections::VecDeque;
use std::path::Path;
use std::sync::mpsc;
use std::sync::Mutex;

use silcfm_trace::profiles::WorkloadProfile;
use silcfm_types::rng::SplitMix64;
use silcfm_types::{SilcFmError, SystemConfig};

use silcfm_obs::{LatencyBreakdown, ObsReport};

use crate::experiment::{run, run_sharded, run_traced, RunParams, SchemeKind, TraceParams};
use crate::journal;
use crate::metrics::RunResult;
use crate::shard::ShardParams;

/// One self-contained simulation: everything [`run`] needs, by value, so the
/// job can execute on any worker in any order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Workload profile to simulate.
    pub profile: WorkloadProfile,
    /// Placement scheme.
    pub scheme: SchemeKind,
    /// System configuration (cores, caches, memories).
    pub cfg: SystemConfig,
    /// Run-size and seeding knobs.
    pub params: RunParams,
}

impl Job {
    /// Executes the job. This is the *only* path by which both the serial
    /// and the parallel engines run a simulation, which is what makes their
    /// outputs comparable bit for bit.
    pub fn execute(&self) -> RunResult {
        run(&self.profile, self.scheme, &self.cfg, &self.params)
    }

    /// Executes the job on the sharded runner: `shard.threads` threads
    /// *inside* this one simulation (DESIGN.md §11). The result is
    /// bit-identical to [`Job::execute`] at any thread count, so sharded
    /// and serial grids — and their journals — interoperate freely.
    pub fn execute_sharded(&self, shard: &ShardParams) -> RunResult {
        run_sharded(&self.profile, self.scheme, &self.cfg, &self.params, shard).0
    }
}

/// Builder for the scheme × workload grid all figure harnesses iterate.
///
/// Jobs are emitted workload-major (all schemes of workload 0, then workload
/// 1, …) matching the serial loops the figure binaries used to write by
/// hand.
#[derive(Debug, Clone)]
pub struct ExperimentGrid {
    cfg: SystemConfig,
    params: RunParams,
    workloads: Vec<WorkloadProfile>,
    schemes: Vec<SchemeKind>,
    seeded: bool,
}

impl ExperimentGrid {
    /// Starts an empty grid over one configuration point.
    pub fn new(cfg: SystemConfig, params: RunParams) -> Self {
        Self {
            cfg,
            params,
            workloads: Vec::new(),
            schemes: Vec::new(),
            seeded: false,
        }
    }

    /// Adds one workload row.
    #[must_use]
    pub fn workload(mut self, profile: &WorkloadProfile) -> Self {
        self.workloads.push(*profile);
        self
    }

    /// Adds every Table III workload as a row.
    #[must_use]
    pub fn all_workloads(mut self) -> Self {
        self.workloads
            .extend(silcfm_trace::profiles::all().iter().copied());
        self
    }

    /// Adds one scheme column.
    #[must_use]
    pub fn scheme(mut self, scheme: SchemeKind) -> Self {
        self.schemes.push(scheme);
        self
    }

    /// Adds several scheme columns.
    #[must_use]
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = SchemeKind>) -> Self {
        self.schemes.extend(schemes);
        self
    }

    /// Derives a decorrelated per-job seed from the base seed and each job's
    /// grid index. Without this, every cell of a sweep reuses one seed and a
    /// lucky placement can masquerade as a scheme effect; with it, reordering
    /// or resharding the grid still reproduces every run exactly.
    #[must_use]
    pub fn seed_per_job(mut self) -> Self {
        self.seeded = true;
        self
    }

    /// Materializes the grid in workload-major order.
    pub fn jobs(&self) -> Vec<Job> {
        let base = SplitMix64::new(self.params.seed);
        let mut jobs = Vec::with_capacity(self.workloads.len() * self.schemes.len());
        for profile in &self.workloads {
            for scheme in &self.schemes {
                let mut params = self.params;
                if self.seeded {
                    params.seed = base.split(jobs.len() as u64);
                }
                jobs.push(Job {
                    profile: *profile,
                    scheme: *scheme,
                    cfg: self.cfg,
                    params,
                });
            }
        }
        jobs
    }
}

/// Number of worker threads to use by default: the `SILCFM_THREADS`
/// environment variable if set, else the machine's available parallelism.
pub fn default_threads() -> usize {
    // silcfm-lint: allow(D2) -- explicit operator knob; thread count cannot change results (sharded runner is bit-identical at any width, see tests)
    std::env::var("SILCFM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `jobs` serially in order. The reference implementation the parallel
/// engine is checked against.
pub fn run_grid_serial(jobs: &[Job]) -> Vec<RunResult> {
    jobs.iter().map(Job::execute).collect()
}

/// The work-stealing core shared by [`run_grid`] and [`run_grid_traced`]:
/// runs `execute` over every job across `threads` workers and reassembles
/// the outputs in job order.
///
/// Jobs are dealt round-robin into per-worker deques. Each worker drains its
/// own deque from the front and, when empty, steals from the *back* of the
/// busiest sibling — the classic split that keeps owner and thief off the
/// same end. Long-running jobs (full SILC-FM sweeps take ~10× the no-NM
/// baseline) therefore cannot serialize the tail of the grid behind one
/// unlucky worker.
///
/// Outputs are tagged with the job index and reassembled in order, so the
/// result is bit-identical to a serial loop regardless of thread count,
/// scheduling, or steal pattern.
fn run_grid_with<R, F>(jobs: &[Job], threads: usize, execute: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Job) -> R + Sync,
{
    let threads = threads.max(1).min(jobs.len().max(1));
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(execute).collect();
    }

    // Round-robin deal into per-worker deques.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            Mutex::new(
                (w..jobs.len())
                    .step_by(threads)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let queues = &queues;
    let execute = &execute;

    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for me in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || {
                loop {
                    // Own work first (front), then steal (back).
                    let next = queues[me].lock().unwrap().pop_front().or_else(|| {
                        (0..queues.len())
                            .filter(|&w| w != me)
                            .max_by_key(|&w| queues[w].lock().unwrap().len())
                            .and_then(|w| queues[w].lock().unwrap().pop_back())
                    });
                    let Some(idx) = next else { break };
                    let result = execute(&jobs[idx]);
                    if tx.send((idx, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
    });

    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    for (idx, result) in rx {
        slots[idx] = Some(result);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every job produces exactly one result"))
        .collect()
}

/// Runs `jobs` across `threads` workers with work stealing and returns the
/// results in job order, bit-identical to [`run_grid_serial`]; see
/// [`run_grid_with`] for the scheduling details.
pub fn run_grid(jobs: &[Job], threads: usize) -> Vec<RunResult> {
    run_grid_with(jobs, threads, Job::execute)
}

/// Runs `jobs` one at a time in grid order, with each simulation itself
/// sharded across `shard.threads` threads. This is the shape a *single
/// large run* wants — all threads inside the run rather than across runs —
/// and it returns results bit-identical to [`run_grid_serial`].
pub fn run_grid_sharded(jobs: &[Job], shard: &ShardParams) -> Vec<RunResult> {
    jobs.iter().map(|j| j.execute_sharded(shard)).collect()
}

/// Runs `jobs` with a crash-safe journal at `path`: every finished job is
/// appended (and flushed) the moment its worker reports it, and with
/// `resume == true` an existing journal's completed jobs are loaded instead
/// of re-run. Results come back in job order and — because each job is
/// hermetic and the journal stores full bit-exact records — the aggregate
/// is identical whether the grid ran uninterrupted, was killed and resumed,
/// or was resumed with nothing left to do.
///
/// `on_done(index, result)` fires once per *newly executed* job, in
/// completion order (not job order), for progress reporting and
/// kill-window testing.
///
/// # Errors
///
/// Returns [`SilcFmError::Journal`] when the journal cannot be written, is
/// corrupt, or belongs to a different grid.
pub fn run_grid_journaled(
    jobs: &[Job],
    threads: usize,
    path: &Path,
    resume: bool,
    on_done: impl FnMut(usize, &RunResult),
) -> Result<Vec<RunResult>, SilcFmError> {
    run_grid_journaled_with(jobs, threads, path, resume, on_done, Job::execute)
}

/// Runs a *traced* grid with a crash-safe journal: each finished job
/// appends its latency breakdown (`lat` line) and its result (`job` line)
/// in one flush, and a resume returns journaled jobs' `(result, breakdown)`
/// pairs without re-running them. The sketch codec is bit-exact and sketch
/// merges are order-invariant, so percentile reports built from the
/// returned breakdowns — per job or merged across the grid — are
/// byte-identical whether the grid ran uninterrupted or was killed and
/// resumed (the property the journal tests pin).
///
/// Only the percentile plane survives the journal round-trip; event buffers
/// and epoch series belong to live [`ObsReport`]s and are not journaled.
///
/// # Errors
///
/// Returns [`SilcFmError::Journal`] when the journal cannot be written, is
/// corrupt, or belongs to a different grid.
pub fn run_grid_traced_journaled(
    jobs: &[Job],
    trace: &TraceParams,
    threads: usize,
    path: &Path,
    resume: bool,
    on_done: impl FnMut(usize, &(RunResult, LatencyBreakdown)),
) -> Result<Vec<(RunResult, LatencyBreakdown)>, SilcFmError> {
    let digest = journal::grid_digest(jobs);
    let (writer, done) = if resume && path.exists() {
        let (writer, results, mut lats) = journal::resume_traced(path, digest)?;
        let done: std::collections::BTreeMap<usize, (RunResult, LatencyBreakdown)> = results
            .into_iter()
            .filter_map(|(i, r)| lats.remove(&i).map(|l| (i, (r, l))))
            .collect();
        (writer, done)
    } else {
        (
            journal::JournalWriter::create(path, digest)?,
            std::collections::BTreeMap::new(),
        )
    };
    run_grid_journaled_core(
        jobs,
        threads,
        writer,
        done,
        on_done,
        |job| {
            let (result, report) =
                run_traced(&job.profile, job.scheme, &job.cfg, &job.params, trace);
            (result, report.latency)
        },
        |w, i, (result, lat)| w.append_traced(i, result, lat),
    )
}

/// [`run_grid_journaled`] with every job executed on the sharded runner
/// (`shard.threads` threads inside each simulation). Because sharded
/// results are bit-identical to serial ones, the journal format and grid
/// digest are shared: a grid journaled serially can be resumed sharded and
/// vice versa, and the aggregate never changes.
pub fn run_grid_journaled_sharded(
    jobs: &[Job],
    threads: usize,
    path: &Path,
    resume: bool,
    shard: &ShardParams,
    on_done: impl FnMut(usize, &RunResult),
) -> Result<Vec<RunResult>, SilcFmError> {
    run_grid_journaled_with(jobs, threads, path, resume, on_done, |job: &Job| {
        job.execute_sharded(shard)
    })
}

/// The crash-safe core behind [`run_grid_journaled`] and
/// [`run_grid_journaled_sharded`], generic over how one job executes.
fn run_grid_journaled_with<F>(
    jobs: &[Job],
    threads: usize,
    path: &Path,
    resume: bool,
    on_done: impl FnMut(usize, &RunResult),
    execute: F,
) -> Result<Vec<RunResult>, SilcFmError>
where
    F: Fn(&Job) -> RunResult + Sync,
{
    let digest = journal::grid_digest(jobs);
    let (writer, done) = if resume && path.exists() {
        journal::resume(path, digest)?
    } else {
        (
            journal::JournalWriter::create(path, digest)?,
            std::collections::BTreeMap::new(),
        )
    };
    run_grid_journaled_core(jobs, threads, writer, done, on_done, execute, |w, i, r| {
        w.append(i, r)
    })
}

/// The scheduling/journaling engine shared by the plain and traced
/// journaled grids, generic over the per-job record `R`: executes missing
/// jobs with deal/steal workers, appends each record through `append` the
/// moment its worker reports it, and reassembles everything in job order.
fn run_grid_journaled_core<R, F>(
    jobs: &[Job],
    threads: usize,
    mut writer: journal::JournalWriter,
    done: std::collections::BTreeMap<usize, R>,
    mut on_done: impl FnMut(usize, &R),
    execute: F,
    append: impl Fn(&mut journal::JournalWriter, usize, &R) -> Result<(), SilcFmError>,
) -> Result<Vec<R>, SilcFmError>
where
    R: Send,
    F: Fn(&Job) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    for (index, result) in done {
        if let Some(slot) = slots.get_mut(index) {
            *slot = Some(result);
        }
        // Indices past the grid cannot occur for a digest-matched journal;
        // ignoring them beats panicking on a hand-edited file.
    }
    let todo: Vec<usize> = (0..jobs.len()).filter(|&i| slots[i].is_none()).collect();

    let threads = threads.max(1).min(todo.len().max(1));
    if threads <= 1 || todo.len() <= 1 {
        for &i in &todo {
            let result = execute(&jobs[i]);
            append(&mut writer, i, &result)?;
            on_done(i, &result);
            slots[i] = Some(result);
        }
    } else {
        // Same deal/steal scheduling as `run_grid_with`, but the receiver
        // drains *inside* the scope so records hit the journal as workers
        // finish, not after the whole grid completes — a kill at any moment
        // loses at most the jobs still in flight.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
            .map(|w| {
                Mutex::new(
                    (w..todo.len())
                        .step_by(threads)
                        .map(|k| todo[k])
                        .collect::<VecDeque<usize>>(),
                )
            })
            .collect();
        let queues = &queues;
        let execute = &execute;

        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let mut append_error = None;
        std::thread::scope(|scope| {
            for me in 0..threads {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let next = queues[me].lock().unwrap().pop_front().or_else(|| {
                        (0..queues.len())
                            .filter(|&w| w != me)
                            .max_by_key(|&w| queues[w].lock().unwrap().len())
                            .and_then(|w| queues[w].lock().unwrap().pop_back())
                    });
                    let Some(idx) = next else { break };
                    let result = execute(&jobs[idx]);
                    if tx.send((idx, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (idx, result) in rx {
                if append_error.is_none() {
                    if let Err(e) = append(&mut writer, idx, &result) {
                        append_error = Some(e);
                    }
                }
                on_done(idx, &result);
                if let Some(slot) = slots.get_mut(idx) {
                    *slot = Some(result);
                }
            }
        });
        if let Some(e) = append_error {
            return Err(e);
        }
    }

    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.ok_or_else(|| SilcFmError::journal(format!("job {i} produced no result"))))
        .collect()
}

/// Runs `jobs` with full observability (see
/// [`run_traced`](crate::experiment::run_traced)) across `threads` workers.
/// Results and reports come back in job order — each job's tracers are its
/// own, so the traces (and their exports) are byte-identical to a serial
/// `run_traced` loop at any thread count.
pub fn run_grid_traced(
    jobs: &[Job],
    trace: &TraceParams,
    threads: usize,
) -> Vec<(RunResult, ObsReport)> {
    run_grid_with(jobs, threads, |job| {
        run_traced(&job.profile, job.scheme, &job.cfg, &job.params, trace)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_trace::profiles;

    fn small_grid() -> Vec<Job> {
        ExperimentGrid::new(SystemConfig::small(), RunParams::smoke())
            .workload(profiles::by_name("milc").unwrap())
            .workload(profiles::by_name("lib").unwrap())
            .schemes([SchemeKind::NoNm, SchemeKind::Rand, SchemeKind::silcfm()])
            .jobs()
    }

    #[test]
    fn grid_is_workload_major() {
        let jobs = small_grid();
        assert_eq!(jobs.len(), 6);
        assert_eq!(jobs[0].profile.name, "milc");
        assert_eq!(jobs[2].profile.name, "milc");
        assert_eq!(jobs[3].profile.name, "lib");
        assert_eq!(jobs[0].scheme.label(), "base");
        assert_eq!(jobs[5].scheme.label(), "silcfm");
    }

    #[test]
    fn all_workloads_covers_table3() {
        let jobs = ExperimentGrid::new(SystemConfig::small(), RunParams::smoke())
            .all_workloads()
            .scheme(SchemeKind::NoNm)
            .jobs();
        assert_eq!(jobs.len(), 14);
    }

    #[test]
    fn per_job_seeds_are_distinct_and_stable() {
        let grid = ExperimentGrid::new(SystemConfig::small(), RunParams::smoke())
            .workload(profiles::by_name("milc").unwrap())
            .workload(profiles::by_name("lib").unwrap())
            .schemes([SchemeKind::NoNm, SchemeKind::Rand])
            .seed_per_job();
        let a = grid.jobs();
        let b = grid.jobs();
        assert_eq!(a, b, "seed derivation is deterministic");
        let seeds: silcfm_types::FxHashSet<u64> = a.iter().map(|j| j.params.seed).collect();
        assert_eq!(seeds.len(), a.len(), "every job gets its own seed");
    }

    #[test]
    fn parallel_results_match_serial_bit_for_bit() {
        let jobs = small_grid();
        let serial = run_grid_serial(&jobs);
        for threads in [2, 3, 8] {
            let parallel = run_grid(&jobs, threads);
            assert_eq!(parallel.len(), serial.len());
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.cycles, s.cycles, "{}/{}", s.workload, s.scheme);
                assert_eq!(p.traffic, s.traffic);
                assert_eq!(p.scheme_stats, s.scheme_stats);
                assert_eq!(p.llc_misses, s.llc_misses);
            }
        }
    }

    #[test]
    fn degenerate_pools_still_work() {
        let jobs = &small_grid()[..1];
        assert_eq!(run_grid(jobs, 1).len(), 1);
        assert_eq!(run_grid(jobs, 16).len(), 1);
        assert!(run_grid(&[], 4).is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = option_env!("CARGO_TARGET_TMPDIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(std::env::temp_dir)
            .join("silcfm-runner-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn journaled_grid_matches_serial_bit_for_bit() {
        let jobs = small_grid();
        let path = tmp("full.journal");
        let serial = run_grid_serial(&jobs);
        let journaled = run_grid_journaled(&jobs, 3, &path, false, |_, _| {}).unwrap();
        assert_eq!(serial, journaled);
        // A resume with everything already done re-runs nothing and still
        // returns the identical aggregate.
        let mut reran = 0;
        let resumed = run_grid_journaled(&jobs, 3, &path, true, |_, _| reran += 1).unwrap();
        assert_eq!(reran, 0);
        assert_eq!(serial, resumed);
    }

    #[test]
    fn interrupted_journal_resumes_without_repeating_work() {
        let jobs = small_grid();
        let path = tmp("partial.journal");
        let serial = run_grid_serial(&jobs);

        // Simulate a run killed after three jobs: journal only a prefix.
        let digest = journal::grid_digest(&jobs);
        let mut w = journal::JournalWriter::create(&path, digest).unwrap();
        for (i, r) in serial.iter().enumerate().take(3) {
            w.append(i, r).unwrap();
        }
        drop(w);

        let mut executed = Vec::new();
        let resumed = run_grid_journaled(&jobs, 2, &path, true, |i, _| executed.push(i)).unwrap();
        executed.sort_unstable();
        assert_eq!(executed, vec![3, 4, 5], "only the missing jobs run");
        assert_eq!(serial, resumed, "resumed aggregate is bit-identical");
    }

    #[test]
    fn sharded_grid_matches_serial_bit_for_bit() {
        let jobs = small_grid();
        let serial = run_grid_serial(&jobs);
        let sharded = run_grid_sharded(&jobs, &ShardParams::with_threads(2));
        assert_eq!(serial, sharded);
    }

    #[test]
    fn journal_written_serially_resumes_sharded_and_vice_versa() {
        let jobs = small_grid();
        let serial = run_grid_serial(&jobs);

        // Serial prefix, sharded resume.
        let path = tmp("crossmode.journal");
        let digest = journal::grid_digest(&jobs);
        let mut w = journal::JournalWriter::create(&path, digest).unwrap();
        for (i, r) in serial.iter().enumerate().take(2) {
            w.append(i, r).unwrap();
        }
        drop(w);
        let shard = ShardParams::with_threads(3);
        let mut executed = Vec::new();
        let resumed =
            run_grid_journaled_sharded(&jobs, 1, &path, true, &shard, |i, _| executed.push(i))
                .unwrap();
        executed.sort_unstable();
        assert_eq!(executed, vec![2, 3, 4, 5]);
        assert_eq!(serial, resumed);

        // Sharded prefix, serial resume: the journal carries no trace of
        // which mode wrote it, because the records are bit-identical.
        let path = tmp("crossmode-back.journal");
        let _ = run_grid_journaled_sharded(
            &jobs[..3],
            1,
            &path,
            false,
            &ShardParams::with_threads(2),
            |_, _| {},
        )
        .unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        let path2 = tmp("crossmode-serial.journal");
        let _ = run_grid_journaled(&jobs[..3], 1, &path2, false, |_, _| {}).unwrap();
        let second = std::fs::read_to_string(&path2).unwrap();
        assert_eq!(first, second, "journal bytes are mode-invariant");
    }

    #[test]
    fn journal_from_a_different_grid_is_refused() {
        let jobs = small_grid();
        let path = tmp("foreign.journal");
        let _ = run_grid_journaled(&jobs[..2], 1, &path, false, |_, _| {}).unwrap();
        let err = run_grid_journaled(&jobs, 2, &path, true, |_, _| {}).unwrap_err();
        assert!(err.to_string().contains("different grid"), "{err}");
    }

    /// Breakdowns as comparable bytes: the sketch codec is bit-exact, so
    /// string equality *is* distribution equality.
    fn encode_all(pairs: &[(RunResult, silcfm_obs::LatencyBreakdown)]) -> Vec<String> {
        pairs
            .iter()
            .map(|(_, lat)| {
                let mut s = String::new();
                lat.encode(&mut s);
                s
            })
            .collect()
    }

    #[test]
    fn traced_journal_resumes_byte_identically() {
        let jobs = small_grid();
        let trace = crate::experiment::TraceParams::default();
        let path = tmp("traced.journal");
        // One thread keeps journal lines in job order, which the crash
        // surgery below relies on; the resumes exercise the pool.
        let full = run_grid_traced_journaled(&jobs, &trace, 1, &path, false, |_, _| {}).unwrap();
        let results: Vec<&RunResult> = full.iter().map(|(r, _)| r).collect();
        let serial = run_grid_serial(&jobs);
        assert_eq!(serial.iter().collect::<Vec<_>>(), results);

        // Resume with everything sealed: nothing re-runs, and every
        // breakdown comes back byte-identical from the journal.
        let mut reran = 0;
        let resumed =
            run_grid_traced_journaled(&jobs, &trace, 2, &path, true, |_, _| reran += 1).unwrap();
        assert_eq!(reran, 0);
        assert_eq!(encode_all(&full), encode_all(&resumed));

        // Kill mid-grid: keep the header, job 0's sealed two-line record,
        // and job 1's `lat` line *without* its sealing `job` line — exactly
        // the crash window inside `append_traced`. The orphan's job re-runs
        // and the final percentile plane is still byte-identical.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: String = text.lines().take(4).map(|l| format!("{l}\n")).collect();
        assert!(
            keep.lines().nth(3).is_some_and(|l| l.starts_with("lat 1 ")),
            "test premise: line 3 is job 1's lat record"
        );
        let partial = tmp("traced-partial.journal");
        std::fs::write(&partial, keep).unwrap();
        let mut executed = Vec::new();
        let resumed =
            run_grid_traced_journaled(&jobs, &trace, 1, &partial, true, |i, _| executed.push(i))
                .unwrap();
        executed.sort_unstable();
        assert_eq!(executed, vec![1, 2, 3, 4, 5], "orphaned job 1 re-runs");
        assert_eq!(encode_all(&full), encode_all(&resumed));
    }
}
