//! The Table II on-chip hierarchy: private L1I/L1D per core, shared L2 (LLC).

use silcfm_types::{CoreId, PhysAddr, SystemConfig};

use crate::set_assoc::{AccessKind, SetAssocCache};

/// Traffic a hierarchy access sends to the memory system.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MissTraffic {
    /// The demand line must be fetched from memory.
    pub demand_fetch: bool,
    /// Dirty LLC victims that must be written back to memory.
    pub writebacks: Vec<PhysAddr>,
}

/// Result of one load/store/fetch through the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// On-chip latency in CPU cycles (L1, or L1+L2); memory latency for LLC
    /// misses is added by the caller.
    pub latency_cycles: u32,
    /// Memory traffic caused by this access.
    pub traffic: MissTraffic,
}

impl HierarchyAccess {
    /// Whether the access missed the LLC.
    pub fn is_llc_miss(&self) -> bool {
        self.traffic.demand_fetch
    }
}

/// Aggregate hit/miss statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 (instruction + data) hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// Shared L2 hits.
    pub l2_hits: u64,
    /// Shared L2 misses (LLC misses).
    pub l2_misses: u64,
    /// LLC misses per core, for per-core MPKI (Table III).
    pub llc_misses_per_core: Vec<u64>,
}

impl HierarchyStats {
    /// LLC misses per kilo-instruction for one core.
    pub fn mpki(&self, core: CoreId, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.llc_misses_per_core[core.index()] as f64 * 1000.0 / instructions as f64
    }
}

/// Private L1 caches per core plus a shared L2, with write-back propagation:
/// dirty L1 victims are installed in L2, dirty L2 victims become memory
/// writebacks.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1i: Vec<SetAssocCache>,
    l1d: Vec<SetAssocCache>,
    l2: SetAssocCache,
    line_bytes: u64,
    /// `line_bytes.trailing_zeros()` when the line size is a power of two
    /// (all Table II configurations): the per-access byte→line conversion
    /// runs twice per simulated record, so it becomes a shift.
    line_shift: Option<u32>,
    l1_latency: u32,
    l2_latency: u32,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Builds the hierarchy for `cfg.core.cores` cores.
    pub fn new(cfg: &SystemConfig) -> Self {
        let cores = usize::from(cfg.core.cores);
        Self {
            l1i: (0..cores).map(|_| SetAssocCache::new(cfg.l1i)).collect(),
            l1d: (0..cores).map(|_| SetAssocCache::new(cfg.l1d)).collect(),
            l2: SetAssocCache::new(cfg.l2),
            line_bytes: u64::from(cfg.l2.line_bytes),
            line_shift: u64::from(cfg.l2.line_bytes)
                .is_power_of_two()
                .then(|| cfg.l2.line_bytes.trailing_zeros()),
            l1_latency: cfg.l1d.latency_cycles,
            l2_latency: cfg.l2.latency_cycles,
            stats: HierarchyStats {
                llc_misses_per_core: vec![0; cores],
                ..Default::default()
            },
        }
    }

    /// Statistics accumulated so far.
    pub const fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Performs a data load/store from `core`.
    pub fn access_data(&mut self, core: CoreId, addr: PhysAddr, is_write: bool) -> HierarchyAccess {
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        self.access(core, addr, kind, false)
    }

    /// Performs an instruction fetch from `core`.
    pub fn access_inst(&mut self, core: CoreId, addr: PhysAddr) -> HierarchyAccess {
        self.access(core, addr, AccessKind::Read, true)
    }

    /// Clears all cache contents and statistics.
    pub fn reset(&mut self) {
        for c in self.l1i.iter_mut().chain(self.l1d.iter_mut()) {
            c.reset();
        }
        self.l2.reset();
        let cores = self.stats.llc_misses_per_core.len();
        self.stats = HierarchyStats {
            llc_misses_per_core: vec![0; cores],
            ..Default::default()
        };
    }

    fn access(
        &mut self,
        core: CoreId,
        addr: PhysAddr,
        kind: AccessKind,
        is_fetch: bool,
    ) -> HierarchyAccess {
        let line = match self.line_shift {
            Some(s) => addr.value() >> s,
            None => addr.value() / self.line_bytes,
        };
        let l1 = if is_fetch {
            // silcfm-lint: allow(P1) -- per-core vectors are sized to the core count at construction
            &mut self.l1i[core.index()]
        } else {
            // silcfm-lint: allow(P1) -- per-core vectors are sized to the core count at construction
            &mut self.l1d[core.index()]
        };

        let l1_res = l1.access(line, kind);
        if l1_res.hit {
            self.stats.l1_hits += 1;
            return HierarchyAccess {
                latency_cycles: self.l1_latency,
                traffic: MissTraffic::default(),
            };
        }
        self.stats.l1_misses += 1;

        let mut traffic = MissTraffic::default();
        // A dirty L1 victim is written into L2; if L2 must evict a dirty
        // line to take it, that line goes to memory.
        if let Some(victim_line) = l1_res.writeback {
            let wb = self.l2.access(victim_line, AccessKind::Write);
            if let Some(l2_victim) = wb.writeback {
                traffic
                    .writebacks
                    .push(PhysAddr::new(l2_victim * self.line_bytes));
            }
        }

        let l2_res = self.l2.access(line, kind);
        if l2_res.hit {
            self.stats.l2_hits += 1;
            return HierarchyAccess {
                latency_cycles: self.l1_latency + self.l2_latency,
                traffic,
            };
        }
        self.stats.l2_misses += 1;
        // silcfm-lint: allow(P1) -- per-core vectors are sized to the core count at construction
        self.stats.llc_misses_per_core[core.index()] += 1;
        traffic.demand_fetch = true;
        if let Some(l2_victim) = l2_res.writeback {
            traffic
                .writebacks
                .push(PhysAddr::new(l2_victim * self.line_bytes));
        }
        HierarchyAccess {
            latency_cycles: self.l1_latency + self.l2_latency,
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_types::SystemConfig;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(&SystemConfig::small())
    }

    #[test]
    fn first_touch_misses_all_levels() {
        let mut h = hierarchy();
        let res = h.access_data(CoreId::new(0), PhysAddr::new(0x1000), false);
        assert!(res.is_llc_miss());
        assert_eq!(res.latency_cycles, 4 + 11);
        assert_eq!(h.stats().l2_misses, 1);
        assert_eq!(h.stats().llc_misses_per_core[0], 1);
    }

    #[test]
    fn second_touch_hits_l1() {
        let mut h = hierarchy();
        let a = PhysAddr::new(0x1000);
        h.access_data(CoreId::new(0), a, false);
        let res = h.access_data(CoreId::new(0), a, false);
        assert!(!res.is_llc_miss());
        assert_eq!(res.latency_cycles, 4);
        assert_eq!(h.stats().l1_hits, 1);
    }

    #[test]
    fn sibling_core_hits_shared_l2() {
        let mut h = hierarchy();
        let a = PhysAddr::new(0x1000);
        h.access_data(CoreId::new(0), a, false);
        let res = h.access_data(CoreId::new(1), a, false);
        assert!(!res.is_llc_miss(), "shared L2 services the sibling");
        assert_eq!(res.latency_cycles, 4 + 11);
        assert_eq!(h.stats().l2_hits, 1);
    }

    #[test]
    fn instruction_and_data_l1_are_separate() {
        let mut h = hierarchy();
        let a = PhysAddr::new(0x2000);
        h.access_inst(CoreId::new(0), a);
        // A data access to the same line still misses its own L1 (hits L2).
        let res = h.access_data(CoreId::new(0), a, false);
        assert_eq!(res.latency_cycles, 4 + 11);
    }

    #[test]
    fn writeback_traffic_is_reported() {
        // Direct check with a tiny L2: 1 set of 2 ways.
        let cfg = SystemConfig {
            l1d: silcfm_types::CacheParams {
                capacity_bytes: 128,
                ways: 1,
                line_bytes: 64,
                latency_cycles: 4,
            },
            l2: silcfm_types::CacheParams {
                capacity_bytes: 128,
                ways: 2,
                line_bytes: 64,
                latency_cycles: 11,
            },
            ..SystemConfig::small()
        };
        let mut h = CacheHierarchy::new(&cfg);
        let c = CoreId::new(0);
        // Three writes to distinct lines in L2's single set; the third evicts
        // the (dirty) first.
        h.access_data(c, PhysAddr::new(0), true);
        h.access_data(c, PhysAddr::new(64), true);
        let res = h.access_data(c, PhysAddr::new(128), true);
        assert!(res.is_llc_miss());
        assert!(
            !res.traffic.writebacks.is_empty(),
            "dirty L2 victim must be written back: {res:?}"
        );
    }

    #[test]
    fn mpki_accounting() {
        let mut h = hierarchy();
        for i in 0..10 {
            h.access_data(CoreId::new(0), PhysAddr::new(i * 4096), false);
        }
        let mpki = h.stats().mpki(CoreId::new(0), 1000);
        assert!((mpki - 10.0).abs() < 1e-12);
        assert_eq!(h.stats().mpki(CoreId::new(1), 0), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut h = hierarchy();
        h.access_data(CoreId::new(0), PhysAddr::new(0), false);
        h.reset();
        assert_eq!(h.stats().l2_misses, 0);
        let res = h.access_data(CoreId::new(0), PhysAddr::new(0), false);
        assert!(res.is_llc_miss());
    }
}
