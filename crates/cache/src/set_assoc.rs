//! A generic set-associative, write-back, write-allocate cache.

use silcfm_types::CacheParams;

/// Whether an access reads or writes the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load or instruction fetch.
    Read,
    /// Store (marks the line dirty).
    Write,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was resident.
    pub hit: bool,
    /// Line address of a dirty line evicted to make room (write-back).
    pub writeback: Option<u64>,
}

/// Tag-match words: `(tag << 2) | (dirty << 1) | valid`. Packing state and
/// tag into one u64 lets a lookup test validity and tag equality with a
/// single compare, and keeps a whole 8-way set inside one host cacheline —
/// this probe runs on every simulated memory access.
const VALID_BIT: u64 = 1;
const DIRTY_BIT: u64 = 2;
const TAG_SHIFT: u32 = 2;

/// A set-associative cache with true-LRU replacement, write-back and
/// write-allocate policies. Operates on *line addresses* (byte address
/// divided by the line size) so it is independent of the line size.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// Packed tag/valid/dirty words, `ways` per set.
    lines: Vec<u64>,
    /// LRU timestamps, parallel to `lines`; touched only on hit-update and
    /// victim selection so the tag probe stays single-cacheline.
    last_used: Vec<u64>,
    ways: usize,
    num_sets: u64,
    /// `num_sets - 1`; the power-of-two set count makes index extraction a
    /// mask and tag extraction a shift.
    set_mask: u64,
    set_shift: u32,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    latency_cycles: u32,
}

impl SetAssocCache {
    /// Creates an empty cache from Table II-style parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not yield a whole power-of-two set count.
    pub fn new(params: CacheParams) -> Self {
        let num_sets = params.sets();
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two, got {num_sets}"
        );
        Self {
            lines: vec![0; (num_sets * u64::from(params.ways)) as usize],
            last_used: vec![0; (num_sets * u64::from(params.ways)) as usize],
            ways: params.ways as usize,
            num_sets,
            set_mask: num_sets - 1,
            set_shift: num_sets.trailing_zeros(),
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
            latency_cycles: params.latency_cycles,
        }
    }

    /// Access latency in CPU cycles (Table II).
    pub const fn latency_cycles(&self) -> u32 {
        self.latency_cycles
    }

    /// Number of sets.
    pub const fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Hits so far.
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub const fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    pub const fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// The set's ways as parallel `(tag word, LRU stamp)` pairs. Positioning
    /// is `skip`/`take` rather than slicing so lookups stay panic-free; slice
    /// iterators advance in O(1), so this costs the same as `[base..base+w]`.
    /// `base` is in bounds by construction (`set < num_sets` after masking).
    fn set_ways_mut<'a>(
        lines: &'a mut [u64],
        last_used: &'a mut [u64],
        base: usize,
        ways: usize,
    ) -> impl Iterator<Item = (&'a mut u64, &'a mut u64)> {
        lines
            .iter_mut()
            .skip(base)
            .take(ways)
            .zip(last_used.iter_mut().skip(base).take(ways))
    }

    /// Looks up `line_addr`, allocating it on a miss (write-allocate) and
    /// returning any dirty victim.
    pub fn access(&mut self, line_addr: u64, kind: AccessKind) -> AccessResult {
        self.clock += 1;
        let clock = self.clock;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_shift;
        let want = (tag << TAG_SHIFT) | VALID_BIT;
        let base = set * self.ways;

        if let Some((line, used)) =
            Self::set_ways_mut(&mut self.lines, &mut self.last_used, base, self.ways)
                .find(|(l, _)| **l & !DIRTY_BIT == want)
        {
            if kind == AccessKind::Write {
                *line |= DIRTY_BIT;
            }
            *used = clock;
            self.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }

        self.misses += 1;
        // Choose an invalid way, else the LRU way. Invalid ways key below
        // every valid one, and `min_by_key` takes the first minimum, so this
        // is exactly "first invalid, else least-recently-used". Valid ways
        // never tie: each allocation stamps a fresh nonzero clock.
        let Some((line, used)) =
            Self::set_ways_mut(&mut self.lines, &mut self.last_used, base, self.ways).min_by_key(
                |(l, u)| {
                    if **l & VALID_BIT == 0 {
                        (0u8, 0u64)
                    } else {
                        (1u8, **u)
                    }
                },
            )
        else {
            debug_assert!(false, "CacheParams::sets() cannot yield zero ways");
            return AccessResult {
                hit: false,
                writeback: None,
            };
        };
        let victim = *line;
        let writeback = if victim & VALID_BIT != 0 && victim & DIRTY_BIT != 0 {
            self.writebacks += 1;
            Some(((victim >> TAG_SHIFT) << self.set_shift) | set as u64)
        } else {
            None
        };
        *line = want
            | if kind == AccessKind::Write {
                DIRTY_BIT
            } else {
                0
            };
        *used = clock;
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Returns true if `line_addr` is currently resident (no state change).
    pub fn contains(&self, line_addr: u64) -> bool {
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_shift;
        let want = (tag << TAG_SHIFT) | VALID_BIT;
        let base = set * self.ways;
        self.lines
            .iter()
            .skip(base)
            .take(self.ways)
            .any(|&l| l & !DIRTY_BIT == want)
    }

    /// Clears all contents and statistics.
    pub fn reset(&mut self) {
        self.lines.fill(0);
        self.last_used.fill(0);
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_types::CacheParams;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64 B lines.
        SetAssocCache::new(CacheParams {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency_cycles: 4,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, AccessKind::Read).hit);
        assert!(c.access(0, AccessKind::Read).hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.access(0, AccessKind::Read);
        c.access(4, AccessKind::Read);
        c.access(0, AccessKind::Read); // 0 is now MRU
        c.access(8, AccessKind::Read); // evicts 4 (LRU)
        assert!(c.contains(0));
        assert!(!c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = tiny();
        c.access(0, AccessKind::Write);
        c.access(4, AccessKind::Read);
        let res = c.access(8, AccessKind::Read); // evicts dirty line 0
        assert_eq!(res.writeback, Some(0));
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        c.access(4, AccessKind::Read);
        let res = c.access(8, AccessKind::Read);
        assert_eq!(res.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Write); // hit, now dirty
        c.access(4, AccessKind::Read);
        let res = c.access(8, AccessKind::Read);
        assert_eq!(res.writeback, Some(0));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        for line in 0..4 {
            c.access(line, AccessKind::Read);
        }
        for line in 0..4 {
            assert!(c.contains(line));
        }
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = tiny();
        c.access(0, AccessKind::Write);
        c.reset();
        assert!(!c.contains(0));
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn table2_llc_shape() {
        let c = SetAssocCache::new(silcfm_types::SystemConfig::paper().l2);
        assert_eq!(c.num_sets(), 8192);
        assert_eq!(c.latency_cycles(), 11);
    }
}
