//! SRAM cache hierarchy for the SILC-FM simulator.
//!
//! Models the on-chip caches of Table II: private L1 instruction and data
//! caches per core and a shared L2 that acts as the last-level cache (LLC).
//! Requests that miss the LLC are what the flat-memory schemes see.
//!
//! # Example
//!
//! ```
//! use silcfm_cache::{SetAssocCache, AccessKind};
//! use silcfm_types::CacheParams;
//!
//! let params = CacheParams { capacity_bytes: 4096, ways: 4, line_bytes: 64, latency_cycles: 4 };
//! let mut cache = SetAssocCache::new(params);
//! assert!(!cache.access(0x1000 / 64, AccessKind::Read).hit); // cold miss
//! assert!(cache.access(0x1000 / 64, AccessKind::Read).hit);  // now resident
//! ```

pub mod hierarchy;
pub mod set_assoc;

pub use hierarchy::{CacheHierarchy, HierarchyAccess, HierarchyStats, MissTraffic};
pub use set_assoc::{AccessKind, AccessResult, SetAssocCache};
