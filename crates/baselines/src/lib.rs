//! Baseline flat-memory schemes the paper compares SILC-FM against (§IV-A):
//!
//! * [`RandomStatic`] (`rand`) — static placement, no migration; also serves
//!   as the no-NM baseline when paired with a far-only page mapper;
//! * [`Hma`] (`hma`) — the epoch-based OS-managed scheme of Meswani et al.:
//!   bulk page migration at epoch boundaries with software overheads;
//! * [`Cameo`] (`cam`) — 64 B direct-mapped congruence groups with a line
//!   location table embedded next to the data (Chou et al.);
//! * [`Cameo`] with prefetching (`camp`) — the paper's CAMEO+P, fetching the
//!   next 3 lines along with each miss;
//! * [`Pom`] (`pom`) — Part-of-Memory: 2 KB blocks migrated when an access
//!   counter crosses a threshold (Sim et al.).
//!
//! All five implement [`silcfm_types::MemoryScheme`], so the simulator and
//! bench harness treat them interchangeably with SILC-FM.
//!
//! # Example
//!
//! ```
//! use silcfm_baselines::Cameo;
//! use silcfm_types::{Access, AddressSpace, CoreId, MemKind, MemoryScheme, PhysAddr};
//!
//! let space = AddressSpace::new(64 * 2048, 256 * 2048);
//! let mut cameo = Cameo::new(space, Default::default());
//! let fm = PhysAddr::new(space.nm_bytes());
//! let first = cameo.access_fresh(&Access::read(fm, 0x400, CoreId::new(0)));
//! assert_eq!(first.serviced_from, MemKind::Far);   // miss + swap
//! let second = cameo.access_fresh(&Access::read(fm, 0x400, CoreId::new(0)));
//! assert_eq!(second.serviced_from, MemKind::Near); // now resident
//! ```

pub mod cameo;
pub mod hma;
pub mod pom;
pub mod random;

pub use cameo::{Cameo, CameoParams};
pub use hma::{Hma, HmaParams};
pub use pom::{Pom, PomParams};
pub use random::RandomStatic;
