//! HMA — the epoch-based OS-managed scheme (`hma`), §II-C and §IV-A.
//!
//! The OS counts page accesses during an *epoch*. At each epoch boundary it
//! sweeps the counters, selects hot pages, and bulk-migrates them into NM
//! (swapping with the coldest NM residents), paying software costs for the
//! sweep, PTE updates and TLB shootdowns — costs the paper identifies as the
//! scheme's fundamental handicap: it adapts only at epoch boundaries, so
//! short-lived hot pages are never captured.

use silcfm_types::{
    Access, AddressSpace, FxHashMap, MemKind, MemOp, MemoryScheme, OpList, PhysAddr, SchemeOutcome,
    SchemeStats,
};

/// Page/block size.
const BLOCK: u64 = 2048;

/// HMA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmaParams {
    /// Epoch length in memory accesses (the paper's epochs are hundreds of
    /// milliseconds — millions of accesses).
    pub epoch_accesses: u64,
    /// Initial per-epoch access count for a page to be a migration
    /// candidate. The threshold adapts dynamically (the paper's HMA uses a
    /// "dynamic threshold based counter"): it doubles when too many pages
    /// qualify and halves when almost none do, so single spatial visits to
    /// cold pages stop masquerading as hotness.
    pub hot_threshold: u32,
    /// CPU cycles of software overhead per migrated page (PTE update + TLB
    /// shootdown).
    pub stall_per_migration: u64,
    /// Fixed CPU cycles per epoch for the PTE sweep and context switches.
    pub stall_per_epoch: u64,
}

impl Default for HmaParams {
    fn default() -> Self {
        Self {
            epoch_accesses: 2_000_000,
            hot_threshold: 64,
            stall_per_migration: 5_000,
            stall_per_epoch: 200_000,
        }
    }
}

/// Smallest value the dynamic threshold may adapt down to.
const THRESHOLD_FLOOR: u32 = 2;

/// The HMA controller.
#[derive(Debug, Clone)]
pub struct Hma {
    space: AddressSpace,
    params: HmaParams,
    nm_blocks: u64,
    /// Logical block → physical block, identity when absent.
    location: FxHashMap<u64, u64>,
    /// Physical block → logical block, identity when absent.
    resident: FxHashMap<u64, u64>,
    /// Per-epoch access counts by logical block.
    counts: FxHashMap<u64, u32>,
    accesses: u64,
    serviced_from_nm: u64,
    migrations: u64,
    epochs: u64,
    next_epoch: u64,
    threshold: u32,
}

impl Hma {
    /// Creates an HMA controller over `space`.
    pub fn new(space: AddressSpace, params: HmaParams) -> Self {
        Self {
            space,
            nm_blocks: space.nm_bytes() / BLOCK,
            location: FxHashMap::default(),
            resident: FxHashMap::default(),
            counts: FxHashMap::default(),
            accesses: 0,
            serviced_from_nm: 0,
            migrations: 0,
            epochs: 0,
            next_epoch: params.epoch_accesses,
            threshold: params.hot_threshold,
            params,
        }
    }

    /// The current (dynamically adapted) hotness threshold.
    pub const fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The flat address space this controller manages.
    pub const fn space(&self) -> AddressSpace {
        self.space
    }

    /// Pages migrated so far.
    pub const fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Epoch boundaries crossed so far.
    pub const fn epochs(&self) -> u64 {
        self.epochs
    }

    fn loc(&self, logical: u64) -> u64 {
        *self.location.get(&logical).unwrap_or(&logical)
    }

    fn res(&self, physical: u64) -> u64 {
        *self.resident.get(&physical).unwrap_or(&physical)
    }

    fn swap_pages(&mut self, hot_logical: u64, cold_logical: u64, ops: &mut OpList) {
        let hot_phys = self.loc(hot_logical);
        let cold_phys = self.loc(cold_logical);
        debug_assert!(hot_phys >= self.nm_blocks, "hot page must be in FM");
        debug_assert!(cold_phys < self.nm_blocks, "victim must be in NM");
        ops.push(MemOp::migration_read(
            MemKind::Far,
            PhysAddr::new(hot_phys * BLOCK),
            BLOCK as u32,
        ));
        ops.push(MemOp::migration_read(
            MemKind::Near,
            PhysAddr::new(cold_phys * BLOCK),
            BLOCK as u32,
        ));
        ops.push(MemOp::migration_write(
            MemKind::Near,
            PhysAddr::new(cold_phys * BLOCK),
            BLOCK as u32,
        ));
        ops.push(MemOp::migration_write(
            MemKind::Far,
            PhysAddr::new(hot_phys * BLOCK),
            BLOCK as u32,
        ));
        self.location.insert(hot_logical, cold_phys);
        self.location.insert(cold_logical, hot_phys);
        self.resident.insert(cold_phys, hot_logical);
        self.resident.insert(hot_phys, cold_logical);
        self.migrations += 1;
    }

    /// Runs the epoch-boundary migration, appending the migration traffic to
    /// `ops`; returns the stall cycles charged to all cores.
    fn epoch_boundary(&mut self, ops: &mut OpList) -> u64 {
        self.epochs += 1;
        let mut stall = self.params.stall_per_epoch;

        // Hot candidates currently in FM, hottest first.
        let mut hot: Vec<(u32, u64)> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c >= self.threshold)
            .filter(|&(&b, _)| self.loc(b) >= self.nm_blocks)
            .map(|(&b, &c)| (c, b))
            .collect();
        hot.sort_unstable_by(|a, b| b.cmp(a));
        hot.truncate(self.nm_blocks as usize);

        // Dynamic threshold adaptation: keep per-epoch migration volume a
        // small fraction of NM, as the paper's OS policy tunes for. The
        // threshold starts high (migrating nothing is safe) and relaxes
        // toward the workload's hotness level.
        let candidates = hot.len() as u64;
        if candidates > self.nm_blocks / 16 {
            self.threshold = self.threshold.saturating_mul(2).min(1 << 20);
        } else if candidates < self.nm_blocks / 64 && self.threshold > THRESHOLD_FLOOR {
            self.threshold /= 2;
        }

        if !hot.is_empty() {
            // NM residents by coldness.
            let mut residents: Vec<(u32, u64)> = (0..self.nm_blocks)
                .map(|p| {
                    let logical = self.res(p);
                    (self.counts.get(&logical).copied().unwrap_or(0), logical)
                })
                .collect();
            residents.sort_unstable();

            let mut victim_iter = residents.into_iter();
            for (hot_count, hot_logical) in hot {
                // Hysteresis: only displace a resident clearly colder than
                // the candidate, otherwise near-equal pages ping-pong
                // between the memories every epoch.
                let victim = victim_iter.next();
                match victim {
                    Some((cold_count, cold_logical))
                        if u64::from(hot_count) > 2 * u64::from(cold_count) =>
                    {
                        self.swap_pages(hot_logical, cold_logical, ops);
                        stall += self.params.stall_per_migration;
                    }
                    _ => break,
                }
            }
        }
        self.counts.clear();
        stall
    }
}

impl MemoryScheme for Hma {
    fn access(&mut self, access: &Access, out: &mut SchemeOutcome) {
        out.clear();
        self.accesses += 1;
        let logical = access.addr.value() / BLOCK;
        let offset = access.addr.value() % BLOCK;
        let count = self.counts.entry(logical).or_insert(0);
        *count = count.saturating_add(1);

        let phys = self.loc(logical);
        let addr = PhysAddr::new(phys * BLOCK + offset);
        let mem = if phys < self.nm_blocks {
            self.serviced_from_nm += 1;
            MemKind::Near
        } else {
            MemKind::Far
        };
        // The demand address is resolved *before* the epoch boundary runs:
        // the access that crosses the boundary is still serviced from the
        // old placement.
        out.critical.push(if access.is_write() {
            MemOp::demand_write(mem, addr, 64)
        } else {
            MemOp::demand_read(mem, addr, 64)
        });
        out.serviced_from = mem;

        if self.accesses >= self.next_epoch {
            self.next_epoch += self.params.epoch_accesses;
            out.global_stall_cycles = self.epoch_boundary(&mut out.background);
        }
    }

    fn name(&self) -> &'static str {
        "hma"
    }

    fn stats(&self) -> SchemeStats {
        let mut stats = SchemeStats {
            accesses: self.accesses,
            serviced_from_nm: self.serviced_from_nm,
            subblocks_moved: self.migrations * (BLOCK / 64),
            blocks_migrated: self.migrations,
            details: Vec::new(),
        };
        stats.detail("epochs", self.epochs as f64);
        stats.detail("migrations", self.migrations as f64);
        stats
    }

    fn reset(&mut self) {
        self.location.clear();
        self.resident.clear();
        self.counts.clear();
        self.accesses = 0;
        self.serviced_from_nm = 0;
        self.migrations = 0;
        self.epochs = 0;
        self.next_epoch = self.params.epoch_accesses;
        self.threshold = self.params.hot_threshold;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_types::CoreId;

    const NM: u64 = 16 * BLOCK;
    const FM: u64 = 64 * BLOCK;

    fn hma(epoch: u64) -> Hma {
        Hma::new(
            AddressSpace::new(NM, FM),
            HmaParams {
                epoch_accesses: epoch,
                hot_threshold: 4,
                stall_per_migration: 1_000,
                stall_per_epoch: 10_000,
            },
        )
    }

    fn read(s: &mut Hma, addr: u64) -> SchemeOutcome {
        s.access_fresh(&Access::read(PhysAddr::new(addr), 0, CoreId::new(0)))
    }

    #[test]
    fn no_migration_within_an_epoch() {
        let mut h = hma(1_000);
        let fm = NM; // block 16, in FM
        for _ in 0..100 {
            let out = read(&mut h, fm);
            assert_eq!(out.serviced_from, MemKind::Far);
            assert!(out.background.is_empty());
            assert_eq!(out.global_stall_cycles, 0);
        }
        assert_eq!(h.migrations(), 0);
    }

    #[test]
    fn hot_page_migrates_at_the_epoch_boundary() {
        let mut h = hma(100);
        let fm = NM;
        let mut boundary_seen = false;
        for i in 0..100 {
            let out = read(&mut h, fm + (i % 32) * 64);
            if !out.background.is_empty() {
                boundary_seen = true;
                assert!(out.global_stall_cycles > 0, "software cost charged");
            }
        }
        assert!(boundary_seen, "the 100th access crosses the boundary");
        assert_eq!(h.epochs(), 1);
        assert!(h.migrations() >= 1);
        // Next epoch: the page is serviced from NM.
        assert_eq!(read(&mut h, fm).serviced_from, MemKind::Near);
    }

    #[test]
    fn displaced_cold_page_moves_to_fm() {
        let mut h = hma(100);
        let fm = NM;
        for i in 0..100 {
            let _ = read(&mut h, fm + (i % 32) * 64);
        }
        assert!(h.migrations() >= 1);
        // Exactly one of the 16 NM-native pages was displaced to FM.
        let displaced = (0..16u64)
            .filter(|&b| read(&mut h, b * BLOCK).serviced_from == MemKind::Far)
            .count();
        assert_eq!(displaced, 1, "one cold NM page swapped out per migration");
    }

    #[test]
    fn cold_pages_below_threshold_stay_put() {
        let mut h = hma(100);
        // 100 accesses spread over 50 FM pages: 2 each, below threshold 4.
        for i in 0..100u64 {
            let _ = read(&mut h, NM + (i % 50) * BLOCK);
        }
        assert_eq!(h.migrations(), 0, "nothing was hot enough");
        assert_eq!(h.epochs(), 1);
    }

    #[test]
    fn hottest_pages_win_the_capacity() {
        // 8 NM blocks; 10 hot FM pages with different heats.
        let mut h = Hma::new(
            AddressSpace::new(8 * BLOCK, 64 * BLOCK),
            HmaParams {
                epoch_accesses: 1_000,
                hot_threshold: 2,
                stall_per_migration: 0,
                stall_per_epoch: 0,
            },
        );
        // Page i gets (10 + i) accesses; all NM residents stay cold.
        let mut n = 0u64;
        for i in 0..10u64 {
            for _ in 0..(10 + i) {
                let _ = read(&mut h, (8 + i) * BLOCK);
                n += 1;
            }
        }
        while n < 1_000 {
            let _ = read(&mut h, (8 + 9) * BLOCK); // keep page 9 hottest
            n += 1;
        }
        // 8 NM slots for 10 candidates: the two coldest (pages 0 and 1 of
        // the hot group) are left out.
        assert_eq!(h.migrations(), 8);
        assert_eq!(read(&mut h, (8 + 9) * BLOCK).serviced_from, MemKind::Near);
        assert_eq!(read(&mut h, 8 * BLOCK).serviced_from, MemKind::Far);
    }

    #[test]
    fn migration_traffic_is_whole_pages() {
        let mut h = hma(50);
        for i in 0..50u64 {
            let _ = read(&mut h, NM + (i % 8) * 64);
        }
        assert!(h.migrations() >= 1);
        assert_eq!(h.stats().subblocks_moved, h.migrations() * 32);
    }

    #[test]
    fn stats_and_reset() {
        let mut h = hma(10);
        for i in 0..20u64 {
            let _ = read(&mut h, NM + i * 64);
        }
        assert!(h.stats().details.iter().any(|(n, _)| *n == "epochs"));
        h.reset();
        assert_eq!(h.stats().accesses, 0);
        assert_eq!(h.epochs(), 0);
        assert_eq!(h.name(), "hma");
    }
}
