//! PoM — Part of Memory (`pom`), §II-B and §IV-A.
//!
//! PoM manages the flat space at 2 KB granularity. Like CAMEO it uses
//! congruence groups (one NM frame per group), but instead of swapping on
//! every access it counts accesses to FM-resident blocks and migrates a
//! block only when its counter crosses a threshold — trading responsiveness
//! for fewer, larger (and bandwidth-hungry) migrations. The remap table is
//! cached in a finite SRAM structure; cache misses pay one NM metadata fetch.

use silcfm_types::{
    Access, AddressSpace, MemKind, MemOp, MemoryScheme, OpList, PhysAddr, SchemeOutcome,
    SchemeStats,
};

/// Block (page) size.
const BLOCK: u64 = 2048;

/// PoM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PomParams {
    /// Net competing-counter value at which a 2 KB migration triggers.
    /// PoM's counters are increment/decrement *competing* counters: an FM
    /// block's counter rises on its own accesses and falls when the group's
    /// NM resident is accessed, so a block must out-access the resident by
    /// this margin. The threshold both delays reaction ("PoM requires a
    /// counter for a page to reach a threshold… and thus it misses
    /// potential opportunities") and lets a single dense visit to a cold
    /// page trigger a full-2 KB move ("wastes significant bandwidth in low
    /// spatial locality workloads").
    pub threshold: u8,
    /// Accesses between counter decays (right shifts).
    pub decay_period: u64,
    /// Entries in the on-chip remap-table cache; misses pay one NM metadata
    /// fetch. PoM keeps its remap table in NM with a modest SRAM cache in
    /// front (the PoM paper budgets tens of kilobytes — 2 K entries here),
    /// so accesses outside the cached hot sets pay the table lookup.
    pub remap_cache_entries: usize,
}

impl Default for PomParams {
    fn default() -> Self {
        Self {
            threshold: 6,
            decay_period: 1_000_000,
            remap_cache_entries: 2 << 10,
        }
    }
}

/// The PoM controller.
#[derive(Debug, Clone)]
pub struct Pom {
    space: AddressSpace,
    params: PomParams,
    nm_blocks: u64,
    group: usize,
    /// `perm[set * group + slot]` = member residing at physical slot `slot`
    /// (slot 0 is the NM frame of the group).
    perm: Vec<u8>,
    /// Access counters per (set, member).
    counters: Vec<u8>,
    accesses: u64,
    serviced_from_nm: u64,
    migrations: u64,
    next_decay: u64,
    /// Direct-mapped remap-cache tags (set numbers); `u64::MAX` = empty.
    remap_cache: Vec<u64>,
    remap_cache_misses: u64,
}

impl Pom {
    /// Creates a PoM controller over `space`.
    ///
    /// # Panics
    ///
    /// Panics if FM is not an integral multiple of NM.
    pub fn new(space: AddressSpace, params: PomParams) -> Self {
        assert_eq!(
            space.fm_bytes() % space.nm_bytes(),
            0,
            "FM must be an integral multiple of NM"
        );
        let nm_blocks = space.nm_bytes() / BLOCK;
        let group = (space.total_bytes() / space.nm_bytes()) as usize;
        assert!(group <= u8::MAX as usize, "group size must fit a u8");
        let mut perm = vec![0u8; nm_blocks as usize * group];
        for set in 0..nm_blocks as usize {
            for slot in 0..group {
                perm[set * group + slot] = slot as u8;
            }
        }
        Self {
            space,
            nm_blocks,
            group,
            perm,
            counters: vec![0; nm_blocks as usize * group],
            accesses: 0,
            serviced_from_nm: 0,
            migrations: 0,
            next_decay: params.decay_period,
            remap_cache: vec![u64::MAX; params.remap_cache_entries.next_power_of_two()],
            remap_cache_misses: 0,
            params,
        }
    }

    /// Looks up `set` in the remap-table cache; returns whether it hit and
    /// installs it.
    fn remap_cache_probe(&mut self, set: u64) -> bool {
        let idx = (set as usize) & (self.remap_cache.len() - 1);
        // silcfm-lint: allow(P1) -- idx is masked to the power-of-two cache size
        let hit = self.remap_cache[idx] == set;
        // silcfm-lint: allow(P1) -- idx is masked to the power-of-two cache size
        self.remap_cache[idx] = set;
        if !hit {
            self.remap_cache_misses += 1;
        }
        hit
    }

    /// Whole-block migrations performed so far.
    pub const fn migrations(&self) -> u64 {
        self.migrations
    }

    fn set_and_member(&self, block: u64) -> (u64, u8) {
        (block % self.nm_blocks, (block / self.nm_blocks) as u8)
    }

    fn slot_addr(&self, set: u64, slot: u8) -> PhysAddr {
        PhysAddr::new((u64::from(slot) * self.nm_blocks + set) * BLOCK)
    }

    fn find_slot(&self, set: u64, member: u8) -> u8 {
        let base = set as usize * self.group;
        // silcfm-lint: allow(P1) -- set < nm_blocks by construction, so the row slice is in bounds
        self.perm[base..base + self.group]
            .iter()
            .position(|&m| m == member)
            // silcfm-lint: allow(P1) -- every row is a permutation of 0..group, so member is found
            .expect("permutation is total") as u8
    }

    /// Migrates the whole 2 KB block at `slot` into the group's NM frame,
    /// swapping with the current NM resident.
    fn migrate(&mut self, ops: &mut OpList, set: u64, slot: u8) {
        debug_assert_ne!(slot, 0);
        let nm = self.slot_addr(set, 0);
        let fm = self.slot_addr(set, slot);
        ops.push(MemOp::migration_read(MemKind::Far, fm, BLOCK as u32));
        ops.push(MemOp::migration_read(MemKind::Near, nm, BLOCK as u32));
        ops.push(MemOp::migration_write(MemKind::Near, nm, BLOCK as u32));
        ops.push(MemOp::migration_write(MemKind::Far, fm, BLOCK as u32));
        let base = set as usize * self.group;
        self.perm.swap(base, base + slot as usize);
        self.migrations += 1;
    }

    fn maybe_decay(&mut self) {
        if self.accesses < self.next_decay {
            return;
        }
        self.next_decay += self.params.decay_period;
        for c in &mut self.counters {
            *c >>= 1;
        }
    }
}

impl MemoryScheme for Pom {
    fn access(&mut self, access: &Access, out: &mut SchemeOutcome) {
        out.clear();
        self.accesses += 1;
        self.maybe_decay();
        let block = access.addr.value() / BLOCK;
        let offset = access.addr.value() % BLOCK;
        let (set, member) = self.set_and_member(block);
        let slot = self.find_slot(set, member);

        if !self.remap_cache_probe(set) {
            // Remap-table cache miss: fetch the entry from NM metadata.
            out.critical.push(MemOp::metadata_read(
                MemKind::Near,
                PhysAddr::new((set * 8) % self.space.nm_bytes()),
                8,
            ));
        }
        let base = set as usize * self.group;
        let serviced_from = if slot == 0 {
            self.serviced_from_nm += 1;
            // Resident access: every challenger's competing counter decays.
            for m in 0..self.group {
                if m != member as usize {
                    // silcfm-lint: allow(P1) -- m < group keeps the index in the set's counter row
                    self.counters[base + m] = self.counters[base + m].saturating_sub(1);
                }
            }
            MemKind::Near
        } else {
            // Challenger access: its competing counter rises; at the
            // threshold the whole 2 KB block swaps with the NM resident.
            let cidx = base + member as usize;
            // silcfm-lint: allow(P1) -- cidx = base + member with member < group
            self.counters[cidx] = self.counters[cidx].saturating_add(1);
            // silcfm-lint: allow(P1) -- cidx = base + member with member < group
            if self.counters[cidx] >= self.params.threshold {
                self.migrate(&mut out.background, set, slot);
                // The swap resets the contest for the whole group.
                for m in 0..self.group {
                    // silcfm-lint: allow(P1) -- m < group keeps the index in the set's counter row
                    self.counters[base + m] = 0;
                }
            }
            MemKind::Far
        };

        // Data is read from where it was at the start of the access.
        let addr = self.slot_addr(set, slot).add(offset);
        out.critical.push(if access.is_write() {
            MemOp::demand_write(serviced_from, addr, 64)
        } else {
            MemOp::demand_read(serviced_from, addr, 64)
        });
        out.serviced_from = serviced_from;
    }

    fn name(&self) -> &'static str {
        "pom"
    }

    fn stats(&self) -> SchemeStats {
        let mut stats = SchemeStats {
            accesses: self.accesses,
            serviced_from_nm: self.serviced_from_nm,
            subblocks_moved: self.migrations * (BLOCK / 64),
            blocks_migrated: self.migrations,
            details: Vec::new(),
        };
        stats.detail("migrations", self.migrations as f64);
        stats.detail("remap_cache_misses", self.remap_cache_misses as f64);
        stats
    }

    fn reset(&mut self) {
        for set in 0..self.nm_blocks as usize {
            for slot in 0..self.group {
                self.perm[set * self.group + slot] = slot as u8;
            }
        }
        self.counters.fill(0);
        self.remap_cache.fill(u64::MAX);
        self.remap_cache_misses = 0;
        self.accesses = 0;
        self.serviced_from_nm = 0;
        self.migrations = 0;
        self.next_decay = self.params.decay_period;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_types::CoreId;

    const NM: u64 = 64 * BLOCK;
    const FM: u64 = 4 * NM;

    fn pom() -> Pom {
        Pom::new(
            AddressSpace::new(NM, FM),
            PomParams {
                threshold: 4,
                decay_period: 1_000_000,
                ..PomParams::default()
            },
        )
    }

    fn read(s: &mut Pom, addr: u64) -> SchemeOutcome {
        s.access_fresh(&Access::read(PhysAddr::new(addr), 0, CoreId::new(0)))
    }

    #[test]
    fn fm_block_migrates_only_after_threshold() {
        let mut p = pom();
        let fm = NM; // member 1, set 0
        for i in 0..3 {
            let out = read(&mut p, fm + i * 64);
            assert_eq!(out.serviced_from, MemKind::Far);
            assert!(out.background.is_empty(), "below threshold: no migration");
        }
        let out = read(&mut p, fm); // 4th access crosses threshold 4
        assert_eq!(out.serviced_from, MemKind::Far);
        assert_eq!(out.background.len(), 4, "whole-block swap traffic");
        assert_eq!(p.migrations(), 1);
        // Now resident.
        assert_eq!(read(&mut p, fm + 512).serviced_from, MemKind::Near);
    }

    #[test]
    fn migration_moves_whole_2kb() {
        let mut p = pom();
        let fm = NM;
        for i in 0..4 {
            let _ = read(&mut p, fm + i * 64);
        }
        let st = p.stats();
        assert_eq!(st.subblocks_moved, 32, "2 KB = 32 subblocks of bandwidth");
    }

    #[test]
    fn displaced_nm_block_lands_in_fm() {
        let mut p = pom();
        let nm = 0u64;
        let fm = NM;
        assert_eq!(read(&mut p, nm).serviced_from, MemKind::Near);
        // One resident access decayed nothing yet (challenger at 0); the
        // challenger then needs `threshold` net accesses.
        for i in 0..4 {
            let _ = read(&mut p, fm + i * 64);
        }
        assert_eq!(read(&mut p, nm).serviced_from, MemKind::Far);
    }

    #[test]
    fn counters_decay() {
        let mut p = Pom::new(
            AddressSpace::new(NM, FM),
            PomParams {
                threshold: 4,
                decay_period: 10,
                ..PomParams::default()
            },
        );
        let fm = NM;
        // 3 accesses, then enough unrelated traffic to trigger a decay.
        for i in 0..3 {
            let _ = read(&mut p, fm + i * 64);
        }
        for _ in 0..10 {
            let _ = read(&mut p, 0);
        }
        // Counter decayed 3 → 1; two more accesses still don't migrate.
        let _ = read(&mut p, fm);
        let out = read(&mut p, fm);
        assert!(out.background.is_empty());
        assert_eq!(p.migrations(), 0);
    }

    #[test]
    fn remap_cache_hits_skip_metadata() {
        let mut p = pom();
        let first = read(&mut p, NM);
        assert_eq!(
            first.critical.len(),
            2,
            "cold remap-cache miss fetches metadata"
        );
        let second = read(&mut p, NM + 64);
        assert_eq!(second.critical.len(), 1, "same set hits the remap cache");
    }

    #[test]
    fn stats_and_reset() {
        let mut p = pom();
        let _ = read(&mut p, 0);
        assert_eq!(p.stats().serviced_from_nm, 1);
        p.reset();
        assert_eq!(p.stats().accesses, 0);
        assert_eq!(p.name(), "pom");
    }
}
