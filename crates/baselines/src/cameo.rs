//! CAMEO (`cam`) and CAMEO with prefetching (`camp`), §II-B and §IV-A.
//!
//! CAMEO manages the flat space at 64 B granularity: near memory is a
//! direct-mapped array of line slots, and each slot forms a *congruence
//! group* with the FM lines sharing its index. A Line Location Table (LLT)
//! entry — stored next to the data in NM and fetched with a widened burst —
//! records the permutation of each group. On an access to a line currently
//! in FM, the line is swapped with the group's NM resident.
//!
//! The paper's CAMEO+P variant additionally fetches the next three
//! sequential lines with every miss (the authors found 3 best).

use silcfm_types::{
    Access, AddressSpace, MemKind, MemOp, MemoryScheme, OpList, PhysAddr, SchemeOutcome,
    SchemeStats,
};

/// Extra bytes per NM access for the embedded LLT entry (the paper widens
/// the burst rather than issuing a second request).
const LLT_BYTES: u32 = 8;
/// Line size.
const LINE: u64 = 64;

/// CAMEO configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CameoParams {
    /// Sequential lines prefetched (and swapped in) with each FM access;
    /// 0 = original CAMEO, 3 = the paper's CAMEO+P.
    pub prefetch_lines: u32,
    /// Entries in the location predictor that lets FM requests bypass the
    /// serialized LLT fetch.
    pub predictor_entries: usize,
}

impl Default for CameoParams {
    fn default() -> Self {
        Self {
            prefetch_lines: 0,
            predictor_entries: 4 << 10,
        }
    }
}

impl CameoParams {
    /// The paper's CAMEO+P: next-3-line prefetching.
    pub const fn with_prefetch() -> Self {
        Self {
            prefetch_lines: 3,
            predictor_entries: 4 << 10,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PredEntry {
    /// Predicted slot within the congruence group (0 = NM).
    slot: u8,
}

/// The CAMEO controller.
#[derive(Debug, Clone)]
pub struct Cameo {
    space: AddressSpace,
    params: CameoParams,
    nm_lines: u64,
    group: usize,
    /// Flattened permutations: `perm[set * group + slot]` = member residing
    /// in physical slot `slot` of the group (slot 0 is the NM location).
    perm: Vec<u8>,
    predictor: Vec<PredEntry>,
    pred_mask: usize,
    accesses: u64,
    serviced_from_nm: u64,
    swaps: u64,
    prefetch_swaps: u64,
    pred_correct: u64,
}

impl Cameo {
    /// Creates a CAMEO controller over `space`.
    ///
    /// # Panics
    ///
    /// Panics if the FM size is not an exact multiple of the NM size (the
    /// congruence-group construction requires an integral ratio).
    pub fn new(space: AddressSpace, params: CameoParams) -> Self {
        assert_eq!(
            space.fm_bytes() % space.nm_bytes(),
            0,
            "FM must be an integral multiple of NM"
        );
        let nm_lines = space.nm_bytes() / LINE;
        let group = (space.total_bytes() / space.nm_bytes()) as usize;
        assert!(group <= u8::MAX as usize, "group size must fit a u8");
        let mut perm = vec![0u8; nm_lines as usize * group];
        for set in 0..nm_lines as usize {
            for slot in 0..group {
                perm[set * group + slot] = slot as u8; // identity: member i at slot i
            }
        }
        let pred_n = params.predictor_entries.next_power_of_two();
        Self {
            space,
            params,
            nm_lines,
            group,
            perm,
            predictor: vec![PredEntry::default(); pred_n],
            pred_mask: pred_n - 1,
            accesses: 0,
            serviced_from_nm: 0,
            swaps: 0,
            prefetch_swaps: 0,
            pred_correct: 0,
        }
    }

    /// Number of congruence groups (= NM lines).
    pub const fn sets(&self) -> u64 {
        self.nm_lines
    }

    /// Lines swapped so far (demand-triggered).
    pub const fn swaps(&self) -> u64 {
        self.swaps
    }

    fn set_and_member(&self, line: u64) -> (u64, u8) {
        ((line % self.nm_lines), (line / self.nm_lines) as u8)
    }

    fn slot_addr(&self, set: u64, slot: u8) -> PhysAddr {
        PhysAddr::new((u64::from(slot) * self.nm_lines + set) * LINE)
    }

    fn find_slot(&self, set: u64, member: u8) -> u8 {
        let base = set as usize * self.group;
        // silcfm-lint: allow(P1) -- set < nm_lines by construction, so the row slice is in bounds
        self.perm[base..base + self.group]
            .iter()
            .position(|&m| m == member)
            // silcfm-lint: allow(P1) -- every row is a permutation of 0..group, so member is found
            .expect("permutation is total") as u8
    }

    /// Swaps the member at `slot` with the NM resident (slot 0) of `set`,
    /// emitting migration traffic into `ops`. When `demand_covers_fetch`,
    /// the FM read of the incoming line is already charged as the demand.
    fn swap_with_nm(
        &mut self,
        ops: &mut OpList,
        set: u64,
        slot: u8,
        demand_covers_fetch: bool,
        prefetch: bool,
    ) {
        debug_assert_ne!(slot, 0);
        let nm_addr = self.slot_addr(set, 0);
        let fm_addr = self.slot_addr(set, slot);
        let class_rd = if prefetch {
            silcfm_types::TrafficClass::Prefetch
        } else {
            silcfm_types::TrafficClass::Migration
        };
        if !demand_covers_fetch {
            ops.push(MemOp {
                kind: silcfm_types::OpKind::Read,
                mem: MemKind::Far,
                addr: fm_addr,
                bytes: LINE as u32,
                class: class_rd,
            });
        }
        ops.push(MemOp::migration_read(MemKind::Near, nm_addr, LINE as u32));
        // The NM write carries the widened burst with the updated LLT entry.
        ops.push(MemOp::migration_write(
            MemKind::Near,
            nm_addr,
            LINE as u32 + LLT_BYTES,
        ));
        ops.push(MemOp::migration_write(MemKind::Far, fm_addr, LINE as u32));
        let base = set as usize * self.group;
        self.perm.swap(base, base + slot as usize);
        if prefetch {
            self.prefetch_swaps += 1;
        } else {
            self.swaps += 1;
        }
    }

    fn pred_index(&self, pc: u64, line: u64) -> usize {
        ((pc ^ line).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.pred_mask
    }
}

impl MemoryScheme for Cameo {
    fn access(&mut self, access: &Access, out: &mut SchemeOutcome) {
        out.clear();
        self.accesses += 1;
        let line = access.addr.value() / LINE;
        let (set, member) = self.set_and_member(line);
        let slot = self.find_slot(set, member);
        let pidx = self.pred_index(access.pc, line);
        // silcfm-lint: allow(P1) -- pred_index masks into the power-of-two predictor table
        let predicted = self.predictor[pidx].slot;
        // silcfm-lint: allow(P1) -- pred_index masks into the power-of-two predictor table
        self.predictor[pidx].slot = slot;

        out.serviced_from = if slot == 0 {
            // Resident in NM: one widened access returns data + LLT entry.
            self.serviced_from_nm += 1;
            let addr = self.slot_addr(set, 0);
            out.critical.push(if access.is_write() {
                MemOp::demand_write(MemKind::Near, addr, LINE as u32 + LLT_BYTES)
            } else {
                MemOp::demand_read(MemKind::Near, addr, LINE as u32 + LLT_BYTES)
            });
            MemKind::Near
        } else {
            // In FM: the LLT entry (in NM) tells us where; a correct
            // location prediction issues the FM request in parallel.
            let addr = self.slot_addr(set, slot);
            let llt = MemOp::metadata_read(MemKind::Near, self.slot_addr(set, 0), LLT_BYTES);
            if predicted == slot {
                self.pred_correct += 1;
                out.background.push(llt);
            } else {
                out.critical.push(llt);
            }
            out.critical.push(if access.is_write() {
                MemOp::demand_write(MemKind::Far, addr, LINE as u32)
            } else {
                MemOp::demand_read(MemKind::Far, addr, LINE as u32)
            });
            // CAMEO always swaps the accessed line into NM.
            self.swap_with_nm(&mut out.background, set, slot, true, false);

            // CAMEO+P: swap the next sequential lines in, too.
            for i in 1..=u64::from(self.params.prefetch_lines) {
                let pline = line + i;
                if pline * LINE >= self.space.total_bytes() {
                    break; // ran off the end of the address space
                }
                let (pset, pmember) = self.set_and_member(pline);
                let pslot = self.find_slot(pset, pmember);
                if pslot != 0 {
                    self.swap_with_nm(&mut out.background, pset, pslot, false, true);
                }
            }
            MemKind::Far
        };
    }

    fn name(&self) -> &'static str {
        if self.params.prefetch_lines > 0 {
            "camp"
        } else {
            "cam"
        }
    }

    fn stats(&self) -> SchemeStats {
        let mut stats = SchemeStats {
            accesses: self.accesses,
            serviced_from_nm: self.serviced_from_nm,
            subblocks_moved: self.swaps + self.prefetch_swaps,
            blocks_migrated: 0,
            details: Vec::new(),
        };
        stats.detail("swaps", self.swaps as f64);
        stats.detail("prefetch_swaps", self.prefetch_swaps as f64);
        let fm_accesses = self.accesses - self.serviced_from_nm;
        stats.detail(
            "location_accuracy",
            if fm_accesses == 0 {
                0.0
            } else {
                self.pred_correct as f64 / fm_accesses as f64
            },
        );
        stats
    }

    fn reset(&mut self) {
        for set in 0..self.nm_lines as usize {
            for slot in 0..self.group {
                self.perm[set * self.group + slot] = slot as u8;
            }
        }
        self.predictor.fill(PredEntry::default());
        self.accesses = 0;
        self.serviced_from_nm = 0;
        self.swaps = 0;
        self.prefetch_swaps = 0;
        self.pred_correct = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_types::{CoreId, TrafficClass};

    const NM_BYTES: u64 = 64 * 2048; // 2048 lines
    const FM_BYTES: u64 = 4 * NM_BYTES;

    fn cameo() -> Cameo {
        Cameo::new(
            AddressSpace::new(NM_BYTES, FM_BYTES),
            CameoParams::default(),
        )
    }

    fn read(s: &mut Cameo, addr: u64) -> SchemeOutcome {
        s.access_fresh(&Access::read(PhysAddr::new(addr), 0x400, CoreId::new(0)))
    }

    #[test]
    fn fm_miss_swaps_line_into_nm() {
        let mut c = cameo();
        let fm = NM_BYTES; // member 1, set 0
        assert_eq!(read(&mut c, fm).serviced_from, MemKind::Far);
        assert_eq!(read(&mut c, fm).serviced_from, MemKind::Near);
        assert_eq!(c.swaps(), 1);
    }

    #[test]
    fn displaced_nm_line_moves_to_the_fm_slot() {
        let mut c = cameo();
        let nm = 0u64; // member 0, set 0
        let fm = NM_BYTES; // member 1, set 0
        assert_eq!(read(&mut c, nm).serviced_from, MemKind::Near);
        let _ = read(&mut c, fm); // swap: member 1 ↔ member 0
        let out = read(&mut c, nm);
        assert_eq!(out.serviced_from, MemKind::Far, "line 0 now lives in FM");
        // …and that access swaps it back.
        assert_eq!(read(&mut c, nm).serviced_from, MemKind::Near);
    }

    #[test]
    fn direct_mapping_causes_conflicts() {
        let mut c = cameo();
        let a = NM_BYTES; // member 1, set 0
        let b = 2 * NM_BYTES; // member 2, set 0
        let _ = read(&mut c, a);
        let _ = read(&mut c, b); // evicts a from NM
        assert_eq!(read(&mut c, a).serviced_from, MemKind::Far);
    }

    #[test]
    fn nm_hit_uses_widened_burst() {
        let mut c = cameo();
        let out = read(&mut c, 0);
        assert_eq!(out.serviced_from, MemKind::Near);
        assert_eq!(out.critical.len(), 1);
        assert_eq!(out.critical[0].bytes, 72, "64 B data + 8 B LLT entry");
    }

    #[test]
    fn location_predictor_parallelizes_llt_fetch() {
        let mut c = cameo();
        let a = NM_BYTES;
        let b = 2 * NM_BYTES;
        // Alternate a and b with the same pc: each access finds its line in
        // the same FM slot as last time, so the predictor locks on.
        for _ in 0..4 {
            let _ = read(&mut c, a);
            let _ = read(&mut c, b);
        }
        let out = read(&mut c, a);
        assert_eq!(
            out.critical.len(),
            1,
            "correct slot prediction leaves only the FM demand read: {out:?}"
        );
    }

    #[test]
    fn prefetcher_swaps_following_lines() {
        let mut c = Cameo::new(
            AddressSpace::new(NM_BYTES, FM_BYTES),
            CameoParams::with_prefetch(),
        );
        assert_eq!(c.name(), "camp");
        let fm = NM_BYTES; // member 1, set 0; next lines are sets 1, 2, 3
        let out = read(&mut c, fm);
        let prefetch_ops = out
            .background
            .iter()
            .filter(|o| o.class == TrafficClass::Prefetch)
            .count();
        assert_eq!(prefetch_ops, 3, "one FM read per prefetched line");
        // The prefetched neighbours now hit in NM.
        assert_eq!(read(&mut c, fm + 64).serviced_from, MemKind::Near);
        assert_eq!(read(&mut c, fm + 128).serviced_from, MemKind::Near);
        assert_eq!(read(&mut c, fm + 192).serviced_from, MemKind::Near);
    }

    #[test]
    fn permutation_stays_total_under_stress() {
        let mut c = cameo();
        for i in 0..5_000u64 {
            let member = (i * 7) % 5;
            let set = (i * 13) % 2048;
            let _ = read(&mut c, (member * 2048 + set) * 64);
        }
        // Every group must still contain each member exactly once.
        for set in 0..2048usize {
            let mut seen = [false; 5];
            for slot in 0..5 {
                let m = c.perm[set * 5 + slot] as usize;
                assert!(!seen[m], "member {m} duplicated in set {set}");
                seen[m] = true;
            }
        }
    }

    #[test]
    fn stats_and_reset() {
        let mut c = cameo();
        let _ = read(&mut c, NM_BYTES);
        let st = c.stats();
        assert_eq!(st.accesses, 1);
        assert_eq!(st.subblocks_moved, 1);
        c.reset();
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(read(&mut c, 0).serviced_from, MemKind::Near);
    }

    #[test]
    #[should_panic(expected = "integral multiple")]
    fn ratio_must_be_integral() {
        let _ = Cameo::new(
            AddressSpace::new(3 * 2048, 4 * 2048),
            CameoParams::default(),
        );
    }
}
