//! The Random static placement scheme (`rand` in Fig. 7).
//!
//! Pages are placed once (by the page mapper, uniformly at random over
//! NM+FM) and never migrate. Every access is serviced from wherever its
//! address statically lives; there is no metadata, no swapping, and no
//! bandwidth overhead. Paired with a far-only mapper this same controller
//! models the paper's no-NM baseline system.

use silcfm_types::{
    Access, AddressSpace, MemKind, MemOp, MemoryScheme, SchemeOutcome, SchemeStats,
};

/// Static placement: addresses are serviced in place, forever.
#[derive(Debug, Clone)]
pub struct RandomStatic {
    space: AddressSpace,
    accesses: u64,
    serviced_from_nm: u64,
}

impl RandomStatic {
    /// Creates the scheme over the given address space.
    pub fn new(space: AddressSpace) -> Self {
        Self {
            space,
            accesses: 0,
            serviced_from_nm: 0,
        }
    }
}

impl MemoryScheme for RandomStatic {
    fn access(&mut self, access: &Access, out: &mut SchemeOutcome) {
        out.clear();
        self.accesses += 1;
        let mem = self.space.kind_of(access.addr);
        if mem == MemKind::Near {
            self.serviced_from_nm += 1;
        }
        out.critical.push(if access.is_write() {
            MemOp::demand_write(mem, access.addr, 64)
        } else {
            MemOp::demand_read(mem, access.addr, 64)
        });
        out.serviced_from = mem;
    }

    fn name(&self) -> &'static str {
        "rand"
    }

    fn stats(&self) -> SchemeStats {
        SchemeStats {
            accesses: self.accesses,
            serviced_from_nm: self.serviced_from_nm,
            subblocks_moved: 0,
            blocks_migrated: 0,
            details: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.accesses = 0;
        self.serviced_from_nm = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silcfm_types::{CoreId, PhysAddr};

    fn scheme() -> RandomStatic {
        RandomStatic::new(AddressSpace::new(4 * 2048, 16 * 2048))
    }

    #[test]
    fn services_in_place() {
        let mut s = scheme();
        let nm = s.access_fresh(&Access::read(PhysAddr::new(0), 0, CoreId::new(0)));
        assert_eq!(nm.serviced_from, MemKind::Near);
        let fm = s.access_fresh(&Access::read(PhysAddr::new(5 * 2048), 0, CoreId::new(0)));
        assert_eq!(fm.serviced_from, MemKind::Far);
        assert!(nm.background.is_empty() && fm.background.is_empty());
    }

    #[test]
    fn never_migrates() {
        let mut s = scheme();
        for _ in 0..100 {
            let _ = s.access_fresh(&Access::read(PhysAddr::new(5 * 2048), 0, CoreId::new(0)));
        }
        let st = s.stats();
        assert_eq!(st.subblocks_moved, 0);
        assert_eq!(st.blocks_migrated, 0);
        assert_eq!(st.serviced_from_nm, 0);
    }

    #[test]
    fn writes_are_writes() {
        let mut s = scheme();
        let out = s.access_fresh(&Access::write(PhysAddr::new(0), 0, CoreId::new(0)));
        assert!(out.critical[0].kind.is_write());
    }

    #[test]
    fn reset_and_name() {
        let mut s = scheme();
        let _ = s.access_fresh(&Access::read(PhysAddr::new(0), 0, CoreId::new(0)));
        s.reset();
        assert_eq!(s.stats().accesses, 0);
        assert_eq!(s.name(), "rand");
    }
}
