//! T1 fixture: a justified one-off concurrency use, annotated.
// silcfm-lint: allow-file(T1) -- interning table is write-once and read-only after setup
use std::sync::Mutex;
use std::sync::OnceLock;

fn helper() {
    let _ = (Mutex::new(0u64), OnceLock::<u64>::new());
}
