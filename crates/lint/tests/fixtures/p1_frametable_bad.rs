//! P1/A1 fixture for the SoA frame-metadata table: the scheme's `access`
//! probes the table, so a bare index or unwrap inside the scan fires P1,
//! and an allocation reachable through `victim` fires A1.
struct FrameTable {
    lru: Vec<u64>,
}
impl FrameTable {
    fn probe(&self, want: u64) -> u64 {
        let first = self.lru.first().unwrap();
        first + self.lru[want as usize]
    }
    fn victim(&self) -> usize {
        scratch(self.lru.len())
    }
}

struct Scheme {
    table: FrameTable,
}
impl MemoryScheme for Scheme {
    fn access(&mut self, want: u64) -> u64 {
        self.table.probe(want) + self.table.victim() as u64
    }
}

fn scratch(n: usize) -> usize {
    let v = vec![0u64; n];
    v.len()
}
