//! P1/A1 fixture for the SoA frame-metadata module: `probe` and `victim`
//! are hot seeds in `frametable.rs`, so a bare index or an unwrap in the
//! scan fires P1, and an allocation reachable from `victim` fires A1.
fn probe(lru: &[u64], want: u64) -> u64 {
    let first = lru.first().unwrap();
    first + lru[want as usize]
}

fn victim(lru: &[u64]) -> usize {
    scratch(lru.len())
}

fn scratch(n: usize) -> usize {
    let v = vec![0u64; n];
    v.len()
}
