//! Cross-module A1 regression fixture, hot side: the seed calls an
//! allocating helper that lives in a sibling module. The old file-local
//! A1 could not see this; the call-graph analyzer must.
use crate::util::expand;

struct Ctl;
impl MemoryScheme for Ctl {
    fn access(&mut self, n: u64) -> usize {
        expand(n)
    }
}
