//! X1 fixture: malformed suppression directives (each is an error).
// silcfm-lint: allow(D1)
// silcfm-lint: allow(D1) --
// silcfm-lint: allow(Z9) -- unknown rule id
// silcfm-lint: allow() -- empty rule list
// silcfm-lint: pardon(D1) -- unknown verb
fn nothing() {}
