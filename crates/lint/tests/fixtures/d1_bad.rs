//! D1 fixture: default-hasher containers. Lines are asserted by the tests.
use std::collections::HashMap;
use std::collections::{BTreeMap, HashSet};

fn inline_path() -> usize {
    let s = std::collections::HashSet::<u64>::new();
    s.len()
}
