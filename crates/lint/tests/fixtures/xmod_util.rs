//! Cross-module A1 regression fixture, helper side.
pub fn expand(n: u64) -> usize {
    let v = vec![n];
    v.len()
}
