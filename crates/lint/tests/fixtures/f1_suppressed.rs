//! F1 fixture: the same reduction, annotated with why the operand order
//! is actually pinned.
pub fn run_system_sharded(xs: &[f64]) -> f64 {
    merge_deltas(xs)
}

fn merge_deltas(xs: &[f64]) -> f64 {
    // silcfm-lint: allow(F1) -- shards arrive pre-sorted by lane id, so the order is pinned
    let total: f64 = xs.iter().sum();
    total
}
