//! A1 fixture for the batched access path: `commit` and `sinks` are hot
//! seeds in `batch.rs`, so allocations they reach fire; a constructor
//! that only setup code calls stays clean.
fn commit(n: usize) -> usize {
    grow(n)
}

fn grow(n: usize) -> usize {
    let v = vec![0u8; n];
    v.len()
}

fn with_capacity(n: usize) -> Vec<u8> {
    let mut v = Vec::new();
    v.reserve(n);
    v
}
