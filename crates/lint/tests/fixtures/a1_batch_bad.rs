//! A1 fixture for the batched access path: allocations reachable from
//! the `access_batch` seed fire; a constructor that only setup code
//! calls stays clean even though it calls `Vec::new`.
struct Ctl;
impl MemoryScheme for Ctl {
    fn access_batch(&mut self, n: usize) -> usize {
        grow(n)
    }
}

fn grow(n: usize) -> usize {
    let v = vec![0u8; n];
    v.len()
}

fn with_capacity(n: usize) -> Vec<u8> {
    let mut v = Vec::new();
    v.reserve(n);
    v
}
