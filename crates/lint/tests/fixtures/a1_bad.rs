//! A1 fixture: allocation reachable from the access seed.
fn access(n: usize) -> usize {
    helper(n)
}

fn helper(n: usize) -> usize {
    let v = vec![0u8; n];
    let s = format!("{n}");
    v.len() + s.len()
}

fn cold_setup() -> Vec<u8> {
    Vec::new()
}
