//! A1 fixture: allocations in a helper reachable from the access seed.
struct Ctl;
impl MemoryScheme for Ctl {
    fn access(&mut self, n: usize) -> usize {
        helper(n)
    }
}

fn helper(n: usize) -> usize {
    let v = vec![0u8; n];
    let s = format!("{n}");
    v.len() + s.len()
}

fn cold_setup() -> Vec<u8> {
    Vec::new()
}
