//! D2 fixture: wall-clock and environment reads.
use std::time::Instant;

fn read_env() -> Option<String> {
    std::env::var("SOME_KNOB").ok()
}

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
