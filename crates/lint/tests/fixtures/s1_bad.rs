//! S1 fixture: a duplicate key and a key missing from the registry.
fn stats(s: &mut Sink) {
    s.detail("locks", 1.0);
    s.detail("locks", 2.0);
    s.detail("not_in_registry", 3.0);
}
