//! A1 fixture: a setup allocation inside a seed, annotated.
struct Ctl;
impl MemoryScheme for Ctl {
    fn access(&mut self, n: usize) -> usize {
        // silcfm-lint: allow(A1) -- one-time setup buffer, hoisted out of the per-access loop below
        let v = vec![0u8; n];
        v.len()
    }
}
