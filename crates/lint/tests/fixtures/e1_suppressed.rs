//! E1 fixture: a documented local invariant makes the expect acceptable.
fn validate(channels: Option<u32>) -> u32 {
    // silcfm-lint: allow(E1) -- the caller above always sets channels; the invariant is one line away
    channels.expect("always set by the constructor")
}
