//! F1 fixture, clean variant: integer units until the final report, so
//! the reduction associates.
pub fn run_system_sharded(xs: &[u64]) -> u64 {
    merge_deltas(xs)
}

fn merge_deltas(xs: &[u64]) -> u64 {
    let total: u64 = xs.iter().sum();
    total
}
