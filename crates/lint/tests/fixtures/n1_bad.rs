//! N1 fixture: hash-map iteration feeding a stats merge without a sort.
struct Stats {
    counts: FxHashMap,
}
impl Stats {
    fn collect(&self) -> u64 {
        let mut total = 0u64;
        for (_k, v) in &self.counts {
            total += v;
        }
        self.merge();
        total
    }
    fn merge(&self) {}
}
