//! D1 fixture: the same default-hasher import, suppressed with a reason.
// silcfm-lint: allow(D1) -- interop with an external API that demands the std hasher
use std::collections::HashMap;
