//! P1 fixture: an annotated indexing site with a documented invariant.
struct Ctl;
impl MemoryScheme for Ctl {
    fn access(&mut self, v: &[u32], i: usize) -> u32 {
        debug_assert!(i < v.len(), "caller masks i below len");
        // silcfm-lint: allow(P1) -- index is masked below len by the caller (debug-asserted above)
        v[i]
    }
}
