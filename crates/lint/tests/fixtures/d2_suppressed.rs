//! D2 fixture: a file-wide allowance for a timing demo.
// silcfm-lint: allow-file(D2) -- demo binary whose output is the wall-clock measurement itself
use std::time::Instant;

fn read_env() -> Option<String> {
    std::env::var("SOME_KNOB").ok()
}
