//! N1 fixture, clean variant: the keys are collected and sorted before
//! anything order-sensitive happens.
struct Stats {
    counts: FxHashMap,
}
impl Stats {
    fn collect(&self) -> u64 {
        let mut keys: Vec<u64> = self.counts.keys().copied().collect();
        keys.sort_unstable();
        self.merge();
        keys.len() as u64
    }
    fn merge(&self) {}
}
