//! N1 fixture: the same hash iteration, annotated with why order cannot
//! leak into the merged output.
struct Stats {
    counts: FxHashMap,
}
impl Stats {
    fn collect(&self) -> u64 {
        let mut total = 0u64;
        // silcfm-lint: allow(N1) -- saturating integer sum; order cannot change the merged value
        for (_k, v) in &self.counts {
            total += v;
        }
        self.merge();
        total
    }
    fn merge(&self) {}
}
