//! T1 fixture: ad-hoc concurrency outside the sanctioned shard modules.
use std::sync::atomic::AtomicU64;
use std::sync::mpsc;
use std::sync::Mutex;

fn helper() {
    std::thread::spawn(|| {});
}
