//! E1 fixture: panicking setup code. Linted under a setup-module path.
fn validate(channels: Option<u32>) -> u32 {
    let n = channels.unwrap();
    let m = channels.expect("set");
    if n == 0 {
        panic!("no channels");
    }
    n + m
}
