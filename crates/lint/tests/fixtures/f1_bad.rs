//! F1 fixture: unordered float reduction on the sharded merge path.
pub fn run_system_sharded(xs: &[f64]) -> f64 {
    merge_deltas(xs)
}

fn merge_deltas(xs: &[f64]) -> f64 {
    let total: f64 = xs.iter().sum();
    total
}
