//! P1 fixture: the same panicking body, but behind an impl of a trait
//! that is not a hot-path seed — nothing reaches it, nothing fires.
struct Ctl;
impl Widget for Ctl {
    fn access(&mut self, v: &[u32], o: Option<u32>) -> u32 {
        let a = o.unwrap();
        let b = o.expect("present");
        if v.is_empty() {
            panic!("empty");
        }
        a + b + v[0]
    }
}
