//! P1 fixture: panics on the hot path. Linted under a hot-module path.
fn hot(v: &[u32], o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect("present");
    if v.is_empty() {
        panic!("empty");
    }
    a + b + v[0]
}
