//! S1 fixture for the `.series` sink: a duplicate column, an unregistered
//! column, a column outside the reserved `obs.` namespace, and a `.detail`
//! stat key squatting inside it.
fn spec() -> SeriesSpec {
    SeriesSpec::new()
        .series("obs.hit_rate")
        .series("obs.hit_rate")
        .series("obs.not_registered")
        .series("plain_name")
}
fn stats(s: &mut SchemeStats) {
    s.detail("obs.sneaky", 1.0);
}
