//! Fixture tests: every rule fires at the expected `file:line` on a
//! known-bad snippet, every rule is silenced by a well-formed directive,
//! and a malformed directive is itself an error (X1).
//!
//! Fixtures live in `tests/fixtures/` (not auto-compiled by cargo) and are
//! linted under *logical* workspace paths so the path-scoped rules (D2's
//! exemptions, T1's sanctioned modules) behave exactly as in a real run.
//! P1/A1/N1/F1 scope is *derived*: fixtures seed themselves by impling
//! `MemoryScheme` or naming a parallel entry point, not by their path.

use std::collections::BTreeMap;

use silcfm_lint::{lint_rust_source, lint_sources, manifest, rules, Finding};

/// A representative hot-path module path.
const HOT: &str = "crates/core/src/controller.rs";
/// An ordinary simulator path.
const COLD: &str = "crates/sim/src/scheduler.rs";

fn spots(findings: &[Finding], rule: &str) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn d1_fires_on_default_hasher_imports_and_inline_paths() {
    let (findings, suppressed) = lint_rust_source(COLD, include_str!("fixtures/d1_bad.rs"));
    assert_eq!(spots(&findings, "D1"), vec![2, 3, 6], "{findings:#?}");
    assert_eq!(findings.len(), 3, "only D1 fires: {findings:#?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn d1_is_silenced_by_an_annotated_allow() {
    let (findings, suppressed) = lint_rust_source(COLD, include_str!("fixtures/d1_suppressed.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn d2_fires_on_wall_clock_and_env_reads() {
    let (findings, suppressed) = lint_rust_source(COLD, include_str!("fixtures/d2_bad.rs"));
    assert_eq!(spots(&findings, "D2"), vec![2, 5, 8, 9], "{findings:#?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn d2_is_exempt_in_the_bench_and_check_sandboxes() {
    let src = include_str!("fixtures/d2_bad.rs");
    for exempt in ["crates/bench/src/main.rs", "crates/types/src/check.rs"] {
        let (findings, _) = lint_rust_source(exempt, src);
        assert!(findings.is_empty(), "{exempt}: {findings:#?}");
    }
}

#[test]
fn d2_is_silenced_file_wide() {
    let (findings, suppressed) = lint_rust_source(COLD, include_str!("fixtures/d2_suppressed.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
    assert_eq!(suppressed, 2, "both the Instant import and the env read");
}

#[test]
fn p1_fires_on_unwrap_expect_panic_and_bare_indexing() {
    let (findings, suppressed) = lint_rust_source(HOT, include_str!("fixtures/p1_bad.rs"));
    assert_eq!(spots(&findings, "P1"), vec![5, 6, 8, 10], "{findings:#?}");
    assert_eq!(suppressed, 0);
    // The violating fn IS the seed, so the reported chain is one hop.
    assert_eq!(findings[0].chain.len(), 1, "{:?}", findings[0].chain);
    assert!(
        findings[0].chain[0].contains("Ctl::access"),
        "{:?}",
        findings[0].chain
    );
}

#[test]
fn p1_applies_only_to_fns_reachable_from_a_declared_seed() {
    // Same body, but the impl'd trait is not `MemoryScheme` — the derived
    // hot set is empty regardless of which module the file lives in.
    let (findings, _) = lint_rust_source(HOT, include_str!("fixtures/p1_unseeded.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn p1_is_silenced_by_a_directive_on_the_line_above() {
    let (findings, suppressed) = lint_rust_source(HOT, include_str!("fixtures/p1_suppressed.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn e1_fires_on_panicking_setup_code() {
    let (findings, suppressed) = lint_rust_source(
        "crates/dram/src/config.rs",
        include_str!("fixtures/e1_bad.rs"),
    );
    assert_eq!(spots(&findings, "E1"), vec![3, 4, 6], "{findings:#?}");
    assert_eq!(findings.len(), 3, "only E1 fires: {findings:#?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn e1_does_not_apply_outside_setup_modules() {
    let (findings, _) = lint_rust_source(COLD, include_str!("fixtures/e1_bad.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn e1_is_silenced_by_an_annotated_allow() {
    let (findings, suppressed) = lint_rust_source(
        "crates/fault/src/schedule.rs",
        include_str!("fixtures/e1_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn a1_fires_only_on_allocations_reachable_from_the_seed() {
    let (findings, suppressed) = lint_rust_source(HOT, include_str!("fixtures/a1_bad.rs"));
    // `helper` is called from the `access` seed, so its `vec![` and
    // `format!` fire; `cold_setup`'s `Vec::new` is unreachable and clean.
    assert_eq!(spots(&findings, "A1"), vec![10, 11], "{findings:#?}");
    assert_eq!(findings.len(), 2, "only A1 fires: {findings:#?}");
    assert_eq!(suppressed, 0);
    let chain = &findings[0].chain;
    assert_eq!(chain.len(), 2, "{chain:?}");
    assert!(chain[0].contains("Ctl::access"), "{chain:?}");
    assert!(chain[1].contains("helper"), "{chain:?}");
}

#[test]
fn a1_is_silenced_by_an_annotated_allow() {
    let (findings, suppressed) = lint_rust_source(HOT, include_str!("fixtures/a1_suppressed.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn a1_covers_the_batched_access_path() {
    let (findings, suppressed) = lint_rust_source(
        "crates/types/src/batch.rs",
        include_str!("fixtures/a1_batch_bad.rs"),
    );
    // `grow` is called from the `access_batch` seed, so its `vec![` fires;
    // the `with_capacity` constructor is only reachable from setup and
    // stays clean even though it calls `Vec::new`.
    assert_eq!(spots(&findings, "A1"), vec![12], "{findings:#?}");
    assert_eq!(findings.len(), 1, "only A1 fires: {findings:#?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn p1_and_a1_cover_the_soa_frame_table() {
    let (findings, suppressed) = lint_rust_source(
        "crates/core/src/frametable.rs",
        include_str!("fixtures/p1_frametable_bad.rs"),
    );
    // `access` probes the table through `self.table`, so `probe` panics
    // twice (unwrap, bare index) and `scratch` allocates behind `victim` —
    // a three-hop chain the old file-local pass could not express.
    assert_eq!(spots(&findings, "P1"), vec![9, 10], "{findings:#?}");
    assert_eq!(spots(&findings, "A1"), vec![27], "{findings:#?}");
    assert_eq!(findings.len(), 3, "{findings:#?}");
    assert_eq!(suppressed, 0);
    let a1 = findings.iter().find(|f| f.rule == "A1").unwrap();
    assert_eq!(a1.chain.len(), 3, "{:?}", a1.chain);
    assert!(a1.chain[0].contains("Scheme::access"), "{:?}", a1.chain);
    assert!(a1.chain[1].contains("FrameTable::victim"), "{:?}", a1.chain);
    assert!(a1.chain[2].contains("scratch"), "{:?}", a1.chain);
}

#[test]
fn a1_crosses_module_files_and_reports_the_chain() {
    // Regression for the cross-file false negative: a hot fn calling an
    // allocating helper in a sibling module, linted as a two-file set.
    let sources = vec![
        (
            "crates/core/src/controller.rs".to_string(),
            include_str!("fixtures/xmod_hot.rs").to_string(),
        ),
        (
            "crates/core/src/util.rs".to_string(),
            include_str!("fixtures/xmod_util.rs").to_string(),
        ),
    ];
    let (findings, suppressed) = lint_sources(&sources, &BTreeMap::new());
    let a1: Vec<_> = findings.iter().filter(|f| f.rule == "A1").collect();
    assert_eq!(a1.len(), 1, "{findings:#?}");
    assert_eq!(a1[0].path, "crates/core/src/util.rs");
    assert_eq!(a1[0].line, 3);
    assert_eq!(a1[0].chain.len(), 2, "{:?}", a1[0].chain);
    assert!(
        a1[0].chain[0].contains("Ctl::access (crates/core/src/controller.rs:"),
        "{:?}",
        a1[0].chain
    );
    assert!(
        a1[0].chain[1].contains("expand (crates/core/src/util.rs:"),
        "{:?}",
        a1[0].chain
    );
    assert_eq!(suppressed, 0);
}

#[test]
fn n1_fires_suppresses_and_stays_quiet_when_sorted() {
    let (findings, suppressed) = lint_rust_source(COLD, include_str!("fixtures/n1_bad.rs"));
    assert_eq!(spots(&findings, "N1"), vec![8], "{findings:#?}");
    assert_eq!(suppressed, 0);
    let chain = &findings[0].chain;
    assert!(chain[0].contains("Stats::collect"), "{chain:?}");
    assert!(chain.last().unwrap().contains("Stats::merge"), "{chain:?}");

    let (findings, suppressed) = lint_rust_source(COLD, include_str!("fixtures/n1_suppressed.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
    assert_eq!(suppressed, 1);

    let (findings, _) = lint_rust_source(COLD, include_str!("fixtures/n1_clean.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn f1_fires_suppresses_and_ignores_integer_reductions() {
    let (findings, suppressed) = lint_rust_source(COLD, include_str!("fixtures/f1_bad.rs"));
    assert_eq!(spots(&findings, "F1"), vec![7], "{findings:#?}");
    assert_eq!(suppressed, 0);
    let chain = &findings[0].chain;
    assert!(chain[0].contains("run_system_sharded"), "{chain:?}");
    assert!(chain[1].contains("merge_deltas"), "{chain:?}");

    let (findings, suppressed) = lint_rust_source(COLD, include_str!("fixtures/f1_suppressed.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
    assert_eq!(suppressed, 1);

    let (findings, _) = lint_rust_source(COLD, include_str!("fixtures/f1_clean.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn t1_fires_suppresses_and_spares_the_sanctioned_modules() {
    let (findings, suppressed) = lint_rust_source(COLD, include_str!("fixtures/t1_bad.rs"));
    assert_eq!(spots(&findings, "T1"), vec![2, 3, 4, 7], "{findings:#?}");
    assert_eq!(suppressed, 0);

    let (findings, suppressed) = lint_rust_source(COLD, include_str!("fixtures/t1_suppressed.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
    assert_eq!(suppressed, 4, "both imports and both construction sites");

    // The sharding runtime is allowed to use real concurrency.
    for sanctioned in ["crates/sim/src/shard.rs", "crates/sim/src/runner.rs"] {
        let (findings, _) = lint_rust_source(sanctioned, include_str!("fixtures/t1_bad.rs"));
        assert!(findings.is_empty(), "{sanctioned}: {findings:#?}");
    }
}

#[test]
fn h1_fires_on_registry_dependencies_in_every_section() {
    let (raw, allows) = manifest::lint_manifest(
        "crates/fixture/Cargo.toml",
        include_str!("fixtures/h1_bad.toml"),
    );
    let (findings, suppressed) = silcfm_lint::directives::apply(raw, &allows);
    // serde (7), rand (9), proptest (12), and the `[dependencies.regex]`
    // section form (14); the path dep silcfm-types (8) is clean.
    assert_eq!(spots(&findings, "H1"), vec![7, 9, 12, 14], "{findings:#?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn h1_is_silenced_by_a_toml_comment_directive() {
    let (raw, allows) = manifest::lint_manifest(
        "crates/fixture/Cargo.toml",
        include_str!("fixtures/h1_suppressed.toml"),
    );
    let (findings, suppressed) = silcfm_lint::directives::apply(raw, &allows);
    assert!(findings.is_empty(), "{findings:#?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn s1_catches_duplicate_and_unregistered_keys_and_dead_registry_entries() {
    let lexed = silcfm_lint::lexer::lex(include_str!("fixtures/s1_bad.rs"));
    let mut keys = BTreeMap::new();
    keys.insert(
        "crates/sim/src/stats.rs".to_string(),
        rules::collect_stat_keys(&lexed),
    );

    let registry = "locks\ndead_key # registered but emitted nowhere\n";
    let findings = silcfm_lint::check_stat_keys(&keys, registry, "crates/lint/stat_keys.txt");

    let dup: Vec<_> = findings
        .iter()
        .filter(|f| f.message.contains("twice"))
        .map(|f| (f.path.as_str(), f.line))
        .collect();
    assert_eq!(dup, vec![("crates/sim/src/stats.rs", 4)], "{findings:#?}");

    let unregistered: Vec<_> = findings
        .iter()
        .filter(|f| f.message.contains("not in the registry"))
        .map(|f| (f.path.as_str(), f.line))
        .collect();
    assert_eq!(
        unregistered,
        vec![("crates/sim/src/stats.rs", 5)],
        "{findings:#?}"
    );

    let dead: Vec<_> = findings
        .iter()
        .filter(|f| f.message.contains("emitted by no stats sink"))
        .map(|f| (f.path.as_str(), f.line))
        .collect();
    assert_eq!(
        dead,
        vec![("crates/lint/stat_keys.txt", 2)],
        "{findings:#?}"
    );
    assert!(findings.iter().all(|f| f.rule == "S1"), "{findings:#?}");
}

#[test]
fn s1_audits_the_series_sink_and_the_obs_namespace() {
    let lexed = silcfm_lint::lexer::lex(include_str!("fixtures/s1_obs_bad.rs"));
    let path = "crates/obs/src/sampler.rs".to_string();
    let mut detail = BTreeMap::new();
    detail.insert(path.clone(), rules::collect_stat_keys(&lexed));
    let mut series = BTreeMap::new();
    series.insert(path.clone(), rules::collect_series_keys(&lexed));
    assert_eq!(series[&path].len(), 4, "all four series literals collected");

    // Registry pass over the merged keys, as `lint_workspace` runs it: the
    // duplicate (7) and the unregistered keys (8, 9) fire; "obs.sneaky" is
    // registered here so only the namespace pass flags it.
    let mut merged = detail.clone();
    merged
        .get_mut(&path)
        .unwrap()
        .extend(series[&path].iter().cloned());
    let registry = "obs.hit_rate\nobs.sneaky\n";
    let findings = silcfm_lint::check_stat_keys(&merged, registry, "crates/lint/stat_keys.txt");
    let dup: Vec<_> = findings
        .iter()
        .filter(|f| f.message.contains("twice"))
        .map(|f| f.line)
        .collect();
    assert_eq!(dup, vec![7], "{findings:#?}");
    let unregistered: Vec<_> = findings
        .iter()
        .filter(|f| f.message.contains("not in the registry"))
        .map(|f| f.line)
        .collect();
    assert_eq!(unregistered, vec![8, 9], "{findings:#?}");

    // Namespace pass: the bare series key (9) and the squatting detail
    // key (12) fire.
    let ns = silcfm_lint::check_obs_namespace(&detail, &series);
    let lines: Vec<_> = ns.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![9, 12], "{ns:#?}");
    assert!(ns[0].message.contains("outside the reserved"), "{ns:#?}");
    assert!(
        ns[1].message.contains("reserved for time-series"),
        "{ns:#?}"
    );
    assert!(ns.iter().all(|f| f.rule == "S1"), "{ns:#?}");
}

#[test]
fn x1_flags_every_malformed_directive_and_is_not_suppressible() {
    let (findings, suppressed) = lint_rust_source(COLD, include_str!("fixtures/x1_malformed.rs"));
    // Missing reason, empty reason, unknown rule, empty rule list, and an
    // unknown verb — one X1 per directive, none silenceable.
    assert_eq!(spots(&findings, "X1"), vec![2, 3, 4, 5, 6], "{findings:#?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn x1_survives_a_file_wide_allow() {
    let src = "// silcfm-lint: allow-file(D1, X1) -- trying to silence the police\n\
               // silcfm-lint: allow(D1)\n";
    let (findings, _) = lint_rust_source(COLD, src);
    assert_eq!(spots(&findings, "X1"), vec![2], "{findings:#?}");
}
