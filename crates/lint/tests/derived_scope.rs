//! The call-graph-derived hot-path scope must be a *superset* of the old
//! hand-maintained lists: every function the legacy file-local analysis
//! considered hot is still hot under the workspace analyzer. The legacy
//! constants and the legacy closure algorithm are copied here verbatim as
//! a frozen baseline — the shipped linter no longer contains them.

use std::collections::BTreeMap;
use std::fs;
use std::ops::Range;
use std::path::Path;

use silcfm_lint::lexer::{lex, Token, TokenKind};
use silcfm_lint::symbols::Workspace;
use silcfm_lint::{crate_name_map, interproc, logical_path, workspace_rust_files};

/// Frozen copy of the legacy `rules::HOT_MODULES`.
const LEGACY_HOT_MODULES: &[&str] = &[
    "controller.rs",
    "set_assoc.rs",
    "model.rs",
    "oplist.rs",
    "system.rs",
    "shard.rs",
    "batch.rs",
    "frametable.rs",
];

/// Frozen copy of the legacy `rules::HOT_SEEDS`.
const LEGACY_HOT_SEEDS: &[(&str, &[&str])] = &[
    ("controller.rs", &["access"]),
    ("set_assoc.rs", &["access"]),
    ("model.rs", &["read", "write", "stream"]),
    ("oplist.rs", &["push", "clear", "extend"]),
    ("system.rs", &["run", "charge"]),
    ("shard.rs", &["next", "next_chunk"]),
    ("batch.rs", &["sinks", "commit", "push_outcome"]),
    (
        "frametable.rs",
        &[
            "probe", "victim", "slot_of", "set_bit", "bump_nm", "bump_fm",
        ],
    ),
];

const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "async", "await",
];

fn punct(t: Option<&Token>, c: char) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
}

fn ident(t: Option<&Token>, name: &str) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
}

fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len()
}

struct FnItem {
    name: String,
    body: Range<usize>,
}

/// Port of the legacy `rules::extract_fns`.
fn extract_fns(toks: &[Token]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if ident(toks.get(i), "fn") {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokenKind::Ident {
                    let mut j = i + 2;
                    let mut paren = 0i32;
                    let mut body = None;
                    while let Some(t) = toks.get(j) {
                        if t.kind == TokenKind::Punct {
                            match t.text.as_str() {
                                "(" => paren += 1,
                                ")" => paren -= 1,
                                ";" if paren == 0 => break,
                                "{" if paren == 0 => {
                                    body = Some(j);
                                    break;
                                }
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                    if let Some(open) = body {
                        let close = matching_brace(toks, open);
                        fns.push(FnItem {
                            name: name_tok.text.clone(),
                            body: open + 1..close,
                        });
                    }
                }
            }
        }
        i += 1;
    }
    fns
}

/// Port of the legacy file-local closure from `rules::lint_allocations`:
/// seed names, then every same-file fn mentioned as a bare/`Self::` call.
fn legacy_hot_fns(toks: &[Token], seeds: &[&str]) -> Vec<String> {
    let fns = extract_fns(toks);
    let mut calls: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for f in &fns {
        let entry = calls.entry(f.name.as_str()).or_default();
        for j in f.body.clone() {
            let t = &toks[j];
            if t.kind == TokenKind::Ident
                && !KEYWORDS.contains(&t.text.as_str())
                && punct(toks.get(j + 1), '(')
            {
                let qualified =
                    j >= 2 && punct(toks.get(j - 1), ':') && punct(toks.get(j - 2), ':');
                if qualified && !(j >= 3 && ident(toks.get(j - 3), "Self")) {
                    continue;
                }
                entry.push(t.text.as_str());
            }
        }
    }
    let mut hot: Vec<&str> = Vec::new();
    let mut queue: Vec<&str> = seeds.to_vec();
    while let Some(name) = queue.pop() {
        if hot.contains(&name) {
            continue;
        }
        hot.push(name);
        if let Some(mentions) = calls.get(name) {
            for m in mentions {
                if calls.contains_key(m) && !hot.contains(m) {
                    queue.push(m);
                }
            }
        }
    }
    // The legacy pass only *reported* on fns actually defined in the file.
    fns.iter()
        .filter(|f| hot.contains(&f.name.as_str()))
        .map(|f| f.name.clone())
        .collect()
}

/// Legacy entries the derived scope intentionally does *not* cover. The old
/// matcher treated any `name(` ident as a call to a same-file `fn name`, so
/// std method calls on field receivers collided with local fns; one entry was
/// an unconditional seed with no hot caller. Each waiver names the artifact.
const LEGACY_COLLISION_WAIVERS: &[(&str, &str, &str)] = &[
    (
        "crates/core/src/frametable.rs",
        "get",
        "`self.remap.get(..)` (slice::get) inside `probe` collided with the \
         local `fn get`, whose real callers are `frame()` — documented as \
         tests/diagnostics only",
    ),
    (
        "crates/types/src/batch.rs",
        "len",
        "`self.critical.len()` (Vec::len) inside `commit` collided with the \
         local `fn len`, a size accessor with no hot-path caller",
    ),
    (
        "crates/types/src/oplist.rs",
        "extend",
        "a legacy *seed*, not a discovered fn: the shipped tree has no \
         hot-path caller of `OpList::extend` (the `Extend` impl serves \
         conversions and tests; hot fill goes through `push`/`push_op`)",
    ),
];

#[test]
fn derived_scope_covers_every_legacy_hot_fn() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let crate_names = crate_name_map(root).expect("crate names");
    let mut sources: Vec<(String, String)> = Vec::new();
    for file in workspace_rust_files(root).expect("walk") {
        sources.push((
            logical_path(root, &file),
            fs::read_to_string(&file).expect("read"),
        ));
    }
    let ws = Workspace::build(&sources, &crate_names);
    let derived = interproc::derived_hot_set(&ws);

    let mut missing: Vec<String> = Vec::new();
    let mut legacy_seen = 0usize;
    let mut waivers_hit = 0usize;
    for (path, source) in &sources {
        // `src/` modules only — the legacy lists never matched test files.
        if !path.contains("/src/") {
            continue;
        }
        let name = path.rsplit('/').next().unwrap();
        if !LEGACY_HOT_MODULES.contains(&name) {
            continue;
        }
        let seeds = LEGACY_HOT_SEEDS
            .iter()
            .find(|(m, _)| *m == name)
            .map(|(_, s)| *s)
            .unwrap();
        let lexed = lex(source);
        for hot_fn in legacy_hot_fns(&lexed.tokens, seeds) {
            legacy_seen += 1;
            if LEGACY_COLLISION_WAIVERS
                .iter()
                .any(|(p, f, _)| *p == path && *f == hot_fn)
            {
                waivers_hit += 1;
                continue;
            }
            if !derived.contains(&(path.clone(), hot_fn.clone())) {
                missing.push(format!("{path}: {hot_fn}"));
            }
        }
    }
    assert!(
        legacy_seen > 20,
        "baseline should cover a real hot surface, saw {legacy_seen} fns"
    );
    // Every waiver must still correspond to a live legacy entry — a stale
    // waiver would silently shrink the superset guarantee.
    assert_eq!(
        waivers_hit,
        LEGACY_COLLISION_WAIVERS.len(),
        "stale entry in LEGACY_COLLISION_WAIVERS: only {waivers_hit} of {} \
         waivers matched a legacy-hot fn",
        LEGACY_COLLISION_WAIVERS.len()
    );
    assert!(
        missing.is_empty(),
        "derived hot scope lost {} of {} legacy-hot fns:\n{}",
        missing.len(),
        legacy_seen,
        missing.join("\n")
    );
}
