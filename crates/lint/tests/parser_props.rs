//! Parser properties over the real workspace and generated item soups.
//!
//! Three guarantees the analyzer leans on (DESIGN.md §13):
//!
//! 1. every workspace `.rs` file parses with **zero** lexer/parser errors —
//!    the call graph is only as complete as the item trees under it;
//! 2. item spans are **well-nested** (children inside parents, siblings
//!    disjoint and ordered), so span-based scoping never misattributes a
//!    token to the wrong function;
//! 3. pretty-printing a tree and re-parsing it is **span-stable** — the
//!    printer/parser pair agrees on item structure, so cached analysis
//!    keyed on token spans stays valid across formatting churn.
//!
//! Generated cases use the fixed-seed harness from `silcfm_types::check`,
//! same style as the rest of the workspace's property tests.

use silcfm_lint::lexer::lex;
use silcfm_lint::parse::{check_nesting, parse, pretty, span_stable_eq};
use silcfm_types::check::forall_cases;
use silcfm_types::rng::{Rng, Xoshiro256StarStar};

/// Workspace root: compile-time constant, independent of invocation dir.
fn root() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

#[test]
fn workspace_parses_clean_with_nested_spans() {
    let files = silcfm_lint::all_workspace_rust_files(&root()).expect("walk workspace");
    assert!(
        files.len() > 50,
        "workspace walk looks wrong: only {} files",
        files.len()
    );
    for file in files {
        let source = std::fs::read_to_string(&file).expect("read source");
        let lexed = lex(&source);
        let tree = parse(&lexed);
        assert!(
            tree.errors.is_empty(),
            "{}: parse errors: {:?}",
            file.display(),
            tree.errors
        );
        check_nesting(&tree.items, None)
            .unwrap_or_else(|e| panic!("{}: bad nesting: {e}", file.display()));
    }
}

#[test]
fn workspace_pretty_roundtrip_is_span_stable() {
    let files = silcfm_lint::all_workspace_rust_files(&root()).expect("walk workspace");
    for file in files {
        let source = std::fs::read_to_string(&file).expect("read source");
        let lexed = lex(&source);
        let tree = parse(&lexed);
        let printed = pretty(&tree, &lexed.tokens);
        let relexed = lex(&printed);
        let retree = parse(&relexed);
        assert!(
            retree.errors.is_empty(),
            "{}: reparse errors: {:?}",
            file.display(),
            retree.errors
        );
        assert!(
            span_stable_eq(&tree.items, &retree.items),
            "{}: pretty roundtrip changed the item tree",
            file.display()
        );
    }
}

// ---- generated item soups --------------------------------------------------

/// Emits one random item into `out`; depth caps recursion for mod bodies.
fn gen_item(rng: &mut Xoshiro256StarStar, out: &mut String, depth: u32, tag: u64) {
    match rng.next_u64() % if depth > 0 { 8 } else { 6 } {
        0 => out.push_str(&format!(
            "fn f{tag}(a: u64, v: &mut Vec<u8>) -> u64 {{ a + v.len() as u64 }}\n"
        )),
        1 => out.push_str(&format!(
            "struct S{tag} {{ field: Box<dyn Trait{tag}>, n: Option<u32> }}\n"
        )),
        2 => out.push_str(&format!(
            "impl S{tag} {{ fn get(&self, i: usize) -> u32 {{ self.n.unwrap_or(i as u32) }} }}\n"
        )),
        3 => out.push_str(&format!(
            "use alpha{tag}::{{beta::Gamma as G{tag}, delta::*}};\n"
        )),
        4 => out.push_str(&format!("const C{tag}: &str = \"lit-{tag}\";\n")),
        5 => out.push_str(&format!(
            "trait Trait{tag} {{ fn req(&self) -> u8; fn opt(&self) -> u8 {{ 0 }} }}\n"
        )),
        6 => {
            out.push_str(&format!("mod m{tag} {{\n"));
            let n = rng.next_u64() % 3;
            for k in 0..n {
                gen_item(rng, out, depth - 1, tag * 10 + k);
            }
            out.push_str("}\n");
        }
        _ => out.push_str(&format!(
            "impl Trait{tag} for S{tag} {{ fn req(&self) -> u8 {{ {} }} }}\n",
            rng.next_u64() % 256
        )),
    }
}

#[test]
fn generated_trees_nest_and_roundtrip() {
    forall_cases("parser roundtrip on generated items", 128, |rng| {
        let mut src = String::new();
        let items = 1 + rng.next_u64() % 8;
        for i in 0..items {
            gen_item(rng, &mut src, 2, i);
        }
        let lexed = lex(&src);
        let tree = parse(&lexed);
        assert!(
            tree.errors.is_empty(),
            "errors {:?} in:\n{src}",
            tree.errors
        );
        check_nesting(&tree.items, None).unwrap_or_else(|e| panic!("{e} in:\n{src}"));
        let printed = pretty(&tree, &lexed.tokens);
        let relexed = lex(&printed);
        let retree = parse(&relexed);
        assert!(
            span_stable_eq(&tree.items, &retree.items),
            "roundtrip drift for:\n{src}\nprinted:\n{printed}"
        );
    });
}
