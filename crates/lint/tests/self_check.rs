//! The workspace polices itself: linting the real tree must come back
//! clean, and the same walk over a deliberately bad tree must not.

use std::fs;
use std::path::Path;

use silcfm_lint::lint_workspace;

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("workspace readable");
    assert!(
        report.findings.is_empty(),
        "the tree must stay lint-clean; run `cargo run -p silcfm-lint` for \
         details:\n{:#?}",
        report.findings
    );
    assert!(report.files_scanned > 50, "walker found the whole tree");
}

#[test]
fn an_injected_bad_file_turns_the_report_red() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("bad-tree");
    let hot = root.join("crates/core/src");
    fs::create_dir_all(&hot).expect("tmp tree");
    fs::write(root.join("Cargo.toml"), "[package]\nname = \"bad\"\n").expect("manifest");
    fs::write(
        root.join("crates/core/Cargo.toml"),
        "[package]\nname = \"bad-core\"\n\n[dependencies]\nserde = \"1.0\"\n",
    )
    .expect("crate manifest");
    fs::write(
        hot.join("controller.rs"),
        "use std::collections::HashMap;\nstruct Ctl;\nimpl MemoryScheme for Ctl {\n    \
         fn access(&mut self, v: &[u32]) -> u32 { v[0] }\n}\n",
    )
    .expect("bad source");

    let report = lint_workspace(&root).expect("tmp tree readable");
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"D1"), "{:#?}", report.findings);
    assert!(rules.contains(&"P1"), "{:#?}", report.findings);
    assert!(rules.contains(&"H1"), "{:#?}", report.findings);
    // The injected tree has none of the fns the declared amortization
    // boundaries name, which a full-workspace run reports as stale config.
    assert!(rules.contains(&"X1"), "{:#?}", report.findings);
    assert!(
        report
            .findings
            .iter()
            .all(|f| !f.path.contains('\\') && f.line >= 1),
        "findings carry forward-slash paths and 1-based lines: {:#?}",
        report.findings
    );
}
