//! The cross-crate call graph over [`crate::symbols::Workspace`], and the
//! seeded reachability that replaces the old hand-maintained hot-module
//! lists.
//!
//! Call-site resolution is layered, most-confident first (DESIGN.md §13):
//!
//! 1. `Self::m` / `self.m` → the impl's self type (falling back to default
//!    methods of traits the type implements);
//! 2. `self.field.m` → the field's declared base type (transparent
//!    wrappers `Box`/`Option`/`Rc`/`Arc`, `&`, `dyn` already stripped by
//!    the parser);
//! 3. `x.m` where `x` is a typed parameter or a `let x: T` / `let x =
//!    T::...` local → that type;
//! 4. when the receiver type is a *trait* (trait object) or a generic
//!    parameter with a trait bound → **dispatch**: edges to that method in
//!    every impl of the trait plus its default body — this is what carries
//!    hotness through `Box<dyn MemoryScheme>` and `F: RecordFeed`;
//! 5. `Type::m` paths → the named type's (or trait's) method;
//! 6. bare `f(...)` → same-module fn, then imports, then a unique free fn;
//! 7. last resort for method calls on unresolvable receivers: a unique
//!    workspace method of that name, unless the name is on the std-alike
//!    skip list (`clone`, `len`, `push`, …) where a false unique match is
//!    likelier than a real one.
//!
//! What remains ambiguous is dropped: the analyzer under-approximates
//! edges, and the fixture suite pins the idioms it must resolve.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::lexer::{Token, TokenKind};
use crate::rules::is_keyword;
use crate::symbols::{FnId, Owner, TraitId, TypeId, Workspace};

/// One resolved call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    pub to: FnId,
    /// 1-based line of the call site.
    pub line: usize,
}

/// Adjacency: `edges[f]` are the resolved calls out of fn `f`.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub edges: Vec<Vec<CallEdge>>,
}

/// Method names whose unique-match fallback is disabled: ubiquitous std
/// names where "only one workspace method happens to share the name" is
/// coincidence, not evidence. Typed receivers still resolve these.
const STD_METHOD_SKIP: &[&str] = &[
    "as_mut",
    "as_ref",
    "borrow",
    "borrow_mut",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "default",
    "drain",
    "entry",
    "eq",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "fmt",
    "fold",
    "for_each",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "keys",
    "last",
    "len",
    "map",
    "max",
    "min",
    "ne",
    "next",
    "partial_cmp",
    "pop",
    "push",
    "remove",
    "retain",
    "rev",
    "skip",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "sum",
    "take",
    "then",
    "to_owned",
    "to_string",
    "to_vec",
    "truncate",
    "unwrap",
    "unwrap_or",
    "values",
    "values_mut",
    "windows",
    "zip",
];

/// Builds the call graph for every fn body in the workspace.
pub fn build(ws: &Workspace) -> CallGraph {
    let mut graph = CallGraph {
        edges: vec![Vec::new(); ws.fns.len()],
    };
    for id in 0..ws.fns.len() {
        let Some(body) = ws.fns[id].body.clone() else {
            continue;
        };
        let resolver = BodyResolver::new(ws, FnId(id), &body);
        graph.edges[id] = resolver.edges();
    }
    graph
}

/// What a receiver expression's type resolved to.
#[derive(Debug, Clone, Copy)]
enum Recv {
    Type(TypeId),
    Trait(TraitId),
    Unknown,
}

struct BodyResolver<'a> {
    ws: &'a Workspace,
    f: FnId,
    file: usize,
    body: Range<usize>,
    /// Local/parameter name → base type ident.
    locals: BTreeMap<String, String>,
    /// Local name → element base type, for sequence containers
    /// (`Vec<T>`, `VecDeque<T>`, `&[T]`): feeds loop-variable typing.
    elems: BTreeMap<String, String>,
}

impl<'a> BodyResolver<'a> {
    fn new(ws: &'a Workspace, f: FnId, body: &Range<usize>) -> Self {
        let sym = &ws.fns[f.0];
        let mut locals: BTreeMap<String, String> = BTreeMap::new();
        for (name, ty) in &sym.sig.params {
            if !ty.is_empty() {
                locals.insert(name.clone(), ty.clone());
            }
        }
        let mut r = Self {
            ws,
            f,
            file: sym.file,
            body: body.clone(),
            locals,
            elems: BTreeMap::new(),
        };
        r.scan_lets();
        r.scan_fors();
        r
    }

    fn toks(&self) -> &'a [Token] {
        &self.ws.files[self.file].lexed.tokens
    }

    fn tok(&self, i: usize) -> Option<&'a Token> {
        if self.body.contains(&i) {
            self.toks().get(i)
        } else {
            None
        }
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| {
            t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c)
        })
    }

    fn ident_at(&self, i: usize) -> Option<&'a str> {
        self.tok(i).and_then(|t| {
            if t.kind == TokenKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            }
        })
    }

    /// Records `let [mut] x : T` and `let [mut] x = T::...` local types.
    fn scan_lets(&mut self) {
        let toks = self.toks();
        for i in self.body.clone() {
            if !matches!(self.ident_at(i), Some("let")) {
                continue;
            }
            let mut j = i + 1;
            if matches!(self.ident_at(j), Some("mut")) {
                j += 1;
            }
            let Some(name) = self.ident_at(j) else {
                continue;
            };
            if is_keyword(name) {
                continue;
            }
            if self.is_punct(j + 1, ':') && !self.is_punct(j + 2, ':') {
                // `let x: T = …`
                let (ty, after) = base_type_at(toks, j + 2);
                // Element type of a sequence container: `Vec<T>` /
                // `VecDeque<T>` (head + `<…>`) or a slice `&[T]` (empty
                // head, stopped at `[`) — either way the element type
                // starts right after the opening bracket.
                let elem_at = (((ty == "Vec" || ty == "VecDeque") && self.is_punct(after, '<'))
                    || (ty.is_empty() && self.is_punct(after, '[')))
                .then_some(after + 1);
                if let Some(at) = elem_at {
                    let (elem, _) = base_type_at(toks, at);
                    if !elem.is_empty() {
                        self.elems.insert(name.to_string(), elem);
                    }
                }
                if !ty.is_empty() {
                    self.locals.insert(name.to_string(), ty);
                }
            } else if self.is_punct(j + 1, '=') && !self.is_punct(j + 2, '=') {
                // `let x = T::new(…)` — constructor-shaped initializer.
                if let Some(head) = self.ident_at(j + 2) {
                    let ctor = self.is_punct(j + 3, ':')
                        && self.is_punct(j + 4, ':')
                        && head.chars().next().is_some_and(char::is_uppercase);
                    if ctor {
                        self.locals.insert(name.to_string(), head.to_string());
                    }
                }
            }
        }
    }

    /// Types loop variables from the element type of the iterated
    /// container: `for x in [&[mut]] coll[.iter()|.iter_mut()|.into_iter()]`
    /// binds `x` to `elem(coll)`, and `for (i, x) in coll.iter().enumerate()`
    /// binds `x` likewise. Any other adapter in the chain (`map`, `windows`,
    /// …) changes the item type, so the binding is dropped.
    fn scan_fors(&mut self) {
        let mut bindings: Vec<(String, String)> = Vec::new();
        for i in self.body.clone() {
            if !matches!(self.ident_at(i), Some("for")) {
                continue;
            }
            // Pattern: `name` or `(a, b)`; give up on anything deeper.
            let tuple = self.is_punct(i + 1, '(');
            let mut vars: Vec<&str> = Vec::new();
            let mut j = i + 1;
            let mut ok = true;
            while j < self.body.end && !matches!(self.ident_at(j), Some("in")) {
                if j > i + 8 {
                    ok = false; // not a simple pattern
                    break;
                }
                match self.tok(j) {
                    Some(t) if t.kind == TokenKind::Ident => match t.text.as_str() {
                        "mut" | "ref" | "_" => {}
                        name if !is_keyword(name) => vars.push(name),
                        _ => {
                            ok = false;
                            break;
                        }
                    },
                    Some(t)
                        if t.kind == TokenKind::Punct
                            && matches!(t.text.as_str(), "(" | ")" | "," | "&") => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
                j += 1;
            }
            if !ok || j >= self.body.end {
                continue;
            }
            // Source: `[&[mut]] coll` then an optional adapter chain.
            let mut k = j + 1;
            while self.is_punct(k, '&') || matches!(self.ident_at(k), Some("mut")) {
                k += 1;
            }
            let Some(coll) = self.ident_at(k) else {
                continue;
            };
            let Some(elem) = self.elems.get(coll).cloned() else {
                continue;
            };
            k += 1;
            let mut enumerated = false;
            let mut chain_ok = true;
            while self.is_punct(k, '.') {
                let Some(m) = self.ident_at(k + 1) else {
                    chain_ok = false;
                    break;
                };
                if !self.is_punct(k + 2, '(') {
                    chain_ok = false;
                    break;
                }
                match m {
                    "iter" | "iter_mut" | "into_iter" => {}
                    "enumerate" => enumerated = true,
                    _ => {
                        chain_ok = false;
                        break;
                    }
                }
                // The adapters above all take no arguments: `( )`.
                if !self.is_punct(k + 3, ')') {
                    chain_ok = false;
                    break;
                }
                k += 4;
            }
            if !chain_ok {
                continue;
            }
            match (tuple, vars.as_slice(), enumerated) {
                (false, [x], false) => bindings.push((x.to_string(), elem)),
                (true, [_, x], true) => bindings.push((x.to_string(), elem)),
                _ => {}
            }
        }
        for (name, ty) in bindings {
            self.locals.entry(name).or_insert(ty);
        }
    }

    /// What `self` means in the enclosing fn: the impl's self type, or —
    /// inside a trait default body — the trait itself (dispatching over
    /// every impl).
    fn self_recv(&self) -> Recv {
        match self.ws.fns[self.f.0].owner {
            Owner::Type(t) => Recv::Type(t),
            Owner::TraitDefault(tr) => Recv::Trait(tr),
            Owner::Free => Recv::Unknown,
        }
    }

    /// Resolves a type *name* in this body's context: generic bound →
    /// trait dispatch; otherwise workspace type/trait lookup.
    fn recv_of_name(&self, name: &str) -> Recv {
        if name == "Self" {
            return self.self_recv();
        }
        if let Some((_, bound)) = self.ws.fns[self.f.0]
            .sig
            .generics
            .iter()
            .find(|(p, _)| p == name)
        {
            if let Some(tr) = self.ws.resolve_trait_name(self.file, bound) {
                return Recv::Trait(tr);
            }
            return Recv::Unknown;
        }
        if let Some(t) = self.ws.resolve_type_name(self.file, name) {
            // A field/local typed by the *name of a trait* is a trait
            // object (`Box<dyn MemoryScheme>` parses to base "MemoryScheme").
            return Recv::Type(t);
        }
        if let Some(tr) = self.ws.resolve_trait_name(self.file, name) {
            return Recv::Trait(tr);
        }
        Recv::Unknown
    }

    /// The declared base type of field `field` on type `t`, resolved.
    fn field_recv(&self, t: TypeId, field: &str) -> Recv {
        // Generic-typed fields (`tracer: T`) dispatch via the type's bounds.
        let ty = &self.ws.types[t.0];
        let Some(f) = ty.fields.iter().find(|f| f.name == field) else {
            return Recv::Unknown;
        };
        if let Some((_, bound)) = ty.generics.iter().find(|(p, _)| p == &f.ty) {
            if let Some(tr) = self.ws.resolve_trait_name(self.file, bound) {
                return Recv::Trait(tr);
            }
            return Recv::Unknown;
        }
        self.recv_of_name(&f.ty)
    }

    /// Methods named `name` on receiver `recv`, with trait dispatch.
    fn dispatch(&self, recv: Recv, name: &str) -> Vec<FnId> {
        match recv {
            Recv::Type(t) => {
                let ty = &self.ws.types[t.0];
                if let Some(ids) = ty.methods.get(name) {
                    return ids.clone();
                }
                // Default methods of traits this type implements.
                let mut out = Vec::new();
                for &tr in &ty.traits {
                    if let Some(Some(def)) = self.ws.traits[tr.0].methods.get(name) {
                        out.push(*def);
                    }
                }
                out
            }
            Recv::Trait(tr) => {
                // Every impl's method + the default body: a trait object or
                // generic call may land in any of them.
                let sym = &self.ws.traits[tr.0];
                let mut out = Vec::new();
                if let Some(Some(def)) = sym.methods.get(name) {
                    out.push(*def);
                }
                for &t in &sym.impls {
                    if let Some(ids) = self.ws.types[t.0].methods.get(name) {
                        out.extend(ids.iter().copied());
                    }
                }
                out
            }
            Recv::Unknown => Vec::new(),
        }
    }

    /// Extracts and resolves every call site in the body.
    fn edges(&self) -> Vec<CallEdge> {
        let mut out: Vec<CallEdge> = Vec::new();
        let push = |targets: Vec<FnId>, line: usize, out: &mut Vec<CallEdge>| {
            for to in targets {
                if !out.iter().any(|e| e.to == to) {
                    out.push(CallEdge { to, line });
                }
            }
        };
        for i in self.body.clone() {
            let Some(t) = self.tok(i) else { continue };
            if t.kind != TokenKind::Ident || is_keyword(&t.text) || !self.is_punct(i + 1, '(') {
                continue;
            }
            let name = t.text.as_str();
            let line = t.line;
            // Method call: `recv . name (`.
            if self.is_punct(i - 1, '.') {
                let recv = self.receiver_before(i - 1);
                let mut targets = self.dispatch(recv, name);
                if targets.is_empty() && matches!(recv, Recv::Unknown) {
                    targets = self.fallback_method(name);
                }
                push(targets, line, &mut out);
                continue;
            }
            // Path call: `A :: … :: name (`.
            if i >= 2 && self.is_punct(i - 1, ':') && self.is_punct(i - 2, ':') {
                if let Some(head) = self.path_head(i - 2) {
                    if head == "self" {
                        continue; // `self::f(…)` module call — rare; skip.
                    }
                    let recv = self.recv_of_name(&head);
                    let targets = match recv {
                        Recv::Unknown => {
                            // Maybe a module path to a free fn.
                            self.ws
                                .resolve_free_fn(self.file, name)
                                .into_iter()
                                .collect()
                        }
                        r => self.dispatch(r, name),
                    };
                    push(targets, line, &mut out);
                }
                continue;
            }
            // Bare call `name(` — not a declaration, not a macro.
            if matches!(self.ident_at(i.wrapping_sub(1)), Some("fn")) {
                continue;
            }
            if let Some(id) = self.ws.resolve_free_fn(self.file, name) {
                push(vec![id], line, &mut out);
            }
        }
        out
    }

    /// Resolves the receiver expression ending at the `.` at index `dot`.
    fn receiver_before(&self, dot: usize) -> Recv {
        // Walk back over a chain of `ident(.ident)*`, innermost first.
        let mut segs: Vec<&str> = Vec::new();
        let mut i = dot;
        loop {
            let Some(name) = self.ident_at(i.wrapping_sub(1)) else {
                return Recv::Unknown; // `).m(…)`, `].m(…)`, literal…
            };
            if is_keyword(name) && name != "self" {
                return Recv::Unknown;
            }
            segs.push(name);
            // A single member-access dot continues the chain; two dots are a
            // range (`0..self.table.len()`), where the chain starts at `self`.
            if i >= 2 && self.is_punct(i - 2, '.') && !(i >= 3 && self.is_punct(i - 3, '.')) {
                i -= 2;
                continue;
            }
            // A `::` before the head means a path expression (`T::X.m()`):
            // give up rather than mistake the last segment for a local.
            if i >= 3 && self.is_punct(i - 2, ':') && self.is_punct(i - 3, ':') {
                return Recv::Unknown;
            }
            break;
        }
        segs.reverse();
        match segs.as_slice() {
            ["self"] => self.self_recv(),
            ["self", field] => match self.self_recv() {
                Recv::Type(t) => self.field_recv(t, field),
                _ => Recv::Unknown,
            },
            [one] => match self.locals.get(*one) {
                Some(ty) => self.recv_of_name(ty),
                // An uppercase head could be a unit struct/enum path; a
                // lowercase one an untyped local.
                None => Recv::Unknown,
            },
            [one, field] => match self.locals.get(*one) {
                Some(ty) => match self.recv_of_name(ty) {
                    Recv::Type(t) => self.field_recv(t, field),
                    _ => Recv::Unknown,
                },
                None => Recv::Unknown,
            },
            _ => Recv::Unknown,
        }
    }

    /// Head segment of the `::`-path whose final `::` ends at `colon2`
    /// (index of the *second* `:`... the first of the two colon tokens).
    fn path_head(&self, colon2: usize) -> Option<String> {
        // Tokens look like: head :: seg :: name ( — colon2 is the index of
        // the first `:` of the last `::` pair. Walk back to the head ident.
        let mut i = colon2; // at `:` (first of the pair before `name`)
        loop {
            let prev = i.checked_sub(1)?;
            // Generic args in paths (`Foo::<T>::new`) — skip back over `<…>`.
            let mut j = prev;
            if self.is_punct(j, '>') {
                let mut depth = 1i64;
                while depth > 0 {
                    j = j.checked_sub(1)?;
                    if self.is_punct(j, '>') {
                        depth += 1;
                    } else if self.is_punct(j, '<') {
                        depth -= 1;
                    }
                }
                j = j.checked_sub(1)?;
            }
            let name = self.ident_at(j)?;
            if j >= 2 && self.is_punct(j - 1, ':') && self.is_punct(j - 2, ':') {
                i = j - 2;
                continue;
            }
            return Some(name.to_string());
        }
    }

    /// Unique-match fallback for a method name on an unknown receiver.
    fn fallback_method(&self, name: &str) -> Vec<FnId> {
        if STD_METHOD_SKIP.contains(&name) {
            return Vec::new();
        }
        let candidates = self.ws.methods_named(name);
        if candidates.len() == 1 {
            vec![candidates[0]]
        } else {
            Vec::new()
        }
    }
}

/// `local name → declared base type text` for a fn body (typed params plus
/// `let x: T` / `let x = T::…` locals) — for rules that key on *declared*
/// type names rather than resolved workspace types (N1 hash iteration).
pub(crate) fn local_types(ws: &Workspace, f: FnId) -> BTreeMap<String, String> {
    match ws.fns[f.0].body.clone() {
        Some(body) => BodyResolver::new(ws, f, &body).locals,
        None => BTreeMap::new(),
    }
}

/// Declared base type text of field `field` on the self type of `f`
/// (`None` for free fns, trait defaults, or unknown fields).
pub(crate) fn self_field_type(ws: &Workspace, f: FnId, field: &str) -> Option<String> {
    let Owner::Type(t) = ws.fns[f.0].owner else {
        return None;
    };
    ws.types[t.0]
        .fields
        .iter()
        .find(|fl| fl.name == field)
        .map(|fl| fl.ty.clone())
}

// ---- seeded reachability ---------------------------------------------------

/// Reachability from a seed set, with parent links for chain reporting.
#[derive(Debug)]
pub struct Reach {
    /// `reached[f]` — fn `f` is the seed set's transitive closure.
    pub reached: Vec<bool>,
    /// BFS tree parent: the caller through which `f` was first reached
    /// (`None` for seeds).
    parent: Vec<Option<FnId>>,
}

impl Reach {
    /// BFS from `seeds` over `graph`, never entering `#[cfg(test)]` fns or
    /// fns listed in `stop` (declared amortization boundaries).
    pub fn compute(ws: &Workspace, graph: &CallGraph, seeds: &[FnId], stop: &[FnId]) -> Self {
        let mut reached = vec![false; ws.fns.len()];
        let mut parent: Vec<Option<FnId>> = vec![None; ws.fns.len()];
        let mut queue: Vec<FnId> = Vec::new();
        for &s in seeds {
            if !ws.fns[s.0].cfg_test && !reached[s.0] {
                reached[s.0] = true;
                queue.push(s);
            }
        }
        while let Some(f) = queue.pop() {
            for e in &graph.edges[f.0] {
                let t = e.to;
                if reached[t.0] || ws.fns[t.0].cfg_test || stop.contains(&t) {
                    continue;
                }
                reached[t.0] = true;
                parent[t.0] = Some(f);
                queue.push(t);
            }
        }
        Self { reached, parent }
    }

    /// The call chain from a seed down to `f` (inclusive), rendered as
    /// `Qualified::name (path:line)` hops.
    pub fn chain(&self, ws: &Workspace, f: FnId) -> Vec<String> {
        let mut hops = Vec::new();
        let mut cur = Some(f);
        while let Some(id) = cur {
            hops.push(format!("{} ({})", ws.qualified_name(id), ws.location(id)));
            cur = self.parent[id.0];
        }
        hops.reverse();
        hops
    }
}

/// Reverse reachability: which fns can *reach* any of `sinks` (used by the
/// N1 order-taint rule), with next-hop links toward the sink.
#[derive(Debug)]
pub struct ReachesSink {
    pub reaches: Vec<bool>,
    /// For each fn, the callee through which a sink is reached first.
    next: Vec<Option<FnId>>,
}

impl ReachesSink {
    /// Reverse BFS from `sinks` over `graph`.
    pub fn compute(ws: &Workspace, graph: &CallGraph, sinks: &[FnId]) -> Self {
        // Reverse adjacency.
        let mut rev: Vec<Vec<FnId>> = vec![Vec::new(); ws.fns.len()];
        for (from, edges) in graph.edges.iter().enumerate() {
            for e in edges {
                rev[e.to.0].push(FnId(from));
            }
        }
        let mut reaches = vec![false; ws.fns.len()];
        let mut next: Vec<Option<FnId>> = vec![None; ws.fns.len()];
        let mut queue: Vec<FnId> = Vec::new();
        for &s in sinks {
            if !reaches[s.0] {
                reaches[s.0] = true;
                queue.push(s);
            }
        }
        while let Some(f) = queue.pop() {
            for &caller in &rev[f.0] {
                if reaches[caller.0] {
                    continue;
                }
                reaches[caller.0] = true;
                next[caller.0] = Some(f);
                queue.push(caller);
            }
        }
        Self { reaches, next }
    }

    /// The call chain from `f` forward to the sink it reaches.
    pub fn chain(&self, ws: &Workspace, f: FnId) -> Vec<String> {
        let mut hops = Vec::new();
        let mut cur = Some(f);
        while let Some(id) = cur {
            hops.push(format!("{} ({})", ws.qualified_name(id), ws.location(id)));
            cur = self.next[id.0];
        }
        hops
    }
}

/// Base type starting at token `i` (same wrapper-stripping as the parser's
/// field typing, re-exported here for `let x: T` locals).
fn base_type_at(toks: &[Token], i: usize) -> (String, usize) {
    // Reuse the parser by lexing nothing: delegate to a tiny local copy of
    // the stripping logic — wrappers and references peel off, the path's
    // last segment wins.
    let mut j = i;
    let is_p = |k: usize, c: char| {
        toks.get(k).is_some_and(|t| {
            t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c)
        })
    };
    let id = |k: usize| {
        toks.get(k).and_then(|t| {
            if t.kind == TokenKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            }
        })
    };
    loop {
        if is_p(j, '&')
            || is_p(j, '*')
            || matches!(id(j), Some("mut" | "dyn" | "impl"))
            || toks.get(j).is_some_and(|t| t.kind == TokenKind::Lifetime)
        {
            j += 1;
        } else {
            break;
        }
    }
    let mut head = String::new();
    if let Some(first) = id(j) {
        if !is_keyword(first) {
            head = first.to_string();
            j += 1;
            while is_p(j, ':') && is_p(j + 1, ':') {
                if let Some(seg) = id(j + 2) {
                    head = seg.to_string();
                    j += 3;
                } else {
                    break;
                }
            }
        }
    }
    const WRAPPERS: &[&str] = &["Box", "Option", "Rc", "Arc"];
    if WRAPPERS.contains(&head.as_str()) && is_p(j, '<') {
        let (inner, after) = base_type_at(toks, j + 1);
        if !inner.is_empty() {
            return (inner, after);
        }
    }
    (head, j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn ws(sources: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::build(&owned, &BTreeMap::new())
    }

    fn fn_id(ws: &Workspace, qualified: &str) -> FnId {
        (0..ws.fns.len())
            .map(FnId)
            .find(|&id| ws.qualified_name(id) == qualified)
            .unwrap_or_else(|| panic!("no fn `{qualified}`"))
    }

    fn calls(ws: &Workspace, g: &CallGraph, from: &str) -> Vec<String> {
        g.edges[fn_id(ws, from).0]
            .iter()
            .map(|e| ws.qualified_name(e.to))
            .collect()
    }

    #[test]
    fn resolves_self_field_and_local_calls() {
        let ws = ws(&[(
            "crates/core/src/controller.rs",
            "struct FrameTable;\n\
             impl FrameTable { fn probe(&self) {} }\n\
             struct SilcFm { frames: FrameTable }\n\
             impl SilcFm {\n\
                 fn access(&mut self) { self.frames.probe(); self.evict(); helper(); }\n\
                 fn evict(&mut self) { let t: FrameTable = FrameTable; t.probe(); }\n\
             }\n\
             fn helper() {}\n",
        )]);
        let g = build(&ws);
        assert_eq!(
            calls(&ws, &g, "SilcFm::access"),
            vec!["FrameTable::probe", "SilcFm::evict", "helper"]
        );
        assert_eq!(calls(&ws, &g, "SilcFm::evict"), vec!["FrameTable::probe"]);
    }

    #[test]
    fn trait_object_field_dispatches_to_every_impl() {
        let ws = ws(&[(
            "crates/sim/src/system.rs",
            "trait Scheme { fn access(&mut self); fn warm(&mut self) { self.access(); } }\n\
             struct A; impl Scheme for A { fn access(&mut self) {} }\n\
             struct B; impl Scheme for B { fn access(&mut self) {} }\n\
             struct System { scheme: Box<dyn Scheme> }\n\
             impl System { fn run(&mut self) { self.scheme.access(); } }\n",
        )]);
        let g = build(&ws);
        assert_eq!(
            calls(&ws, &g, "System::run"),
            vec!["A::access", "B::access"]
        );
        // Trait default methods dispatch back into impls too.
        assert_eq!(
            calls(&ws, &g, "Scheme::warm"),
            vec!["A::access", "B::access"]
        );
    }

    #[test]
    fn generic_bounds_dispatch_through_the_trait() {
        let ws = ws(&[(
            "crates/sim/src/system.rs",
            "trait Feed { fn pull(&mut self) -> u64; }\n\
             struct GenFeed; impl Feed for GenFeed { fn pull(&mut self) -> u64 { 1 } }\n\
             struct System;\n\
             impl System { fn run_with_feed<F: Feed>(&mut self, feed: &mut F) { feed.pull(); } }\n",
        )]);
        let g = build(&ws);
        assert_eq!(
            calls(&ws, &g, "System::run_with_feed"),
            vec!["GenFeed::pull"]
        );
    }

    #[test]
    fn cross_file_paths_and_imports_resolve() {
        let ws = ws(&[
            (
                "crates/dram/src/model.rs",
                "pub struct DramModel;\nimpl DramModel { pub fn read(&mut self) {} }\n",
            ),
            (
                "crates/sim/src/system.rs",
                "use silcfm_dram::model::DramModel;\n\
                 struct System { nm: DramModel }\n\
                 impl System { fn charge(&mut self) { self.nm.read(); } }\n",
            ),
        ]);
        let g = build(&ws);
        assert_eq!(calls(&ws, &g, "System::charge"), vec!["DramModel::read"]);
    }

    #[test]
    fn skip_list_blocks_coincidental_unique_matches() {
        let ws = ws(&[(
            "crates/sim/src/lib.rs",
            "struct OpList;\n\
             impl OpList { fn push(&mut self) {} fn commit_run(&mut self) {} }\n\
             fn f(v: Vec<u8>) { v.push(1); }\n\
             fn g(x: Unknowable) { x.commit_run(); }\n",
        )]);
        let g = build(&ws);
        // `push` is on the skip list: an untyped receiver must not match.
        assert!(calls(&ws, &g, "f").is_empty());
        // A distinctive name on an unknown receiver resolves by uniqueness.
        assert_eq!(calls(&ws, &g, "g"), vec!["OpList::commit_run"]);
    }

    #[test]
    fn reach_computes_chains_and_respects_stops() {
        let ws = ws(&[(
            "crates/core/src/controller.rs",
            "struct C;\n\
             impl C {\n\
                 fn access(&mut self) { self.a(); self.amortized(); }\n\
                 fn a(&mut self) { self.b(); }\n\
                 fn b(&mut self) {}\n\
                 fn amortized(&mut self) { self.c(); }\n\
                 fn c(&mut self) {}\n\
             }\n",
        )]);
        let g = build(&ws);
        let seed = fn_id(&ws, "C::access");
        let stop = fn_id(&ws, "C::amortized");
        let reach = Reach::compute(&ws, &g, &[seed], &[stop]);
        assert!(reach.reached[fn_id(&ws, "C::b").0]);
        assert!(!reach.reached[stop.0], "stop fn is not entered");
        assert!(!reach.reached[fn_id(&ws, "C::c").0], "nothing past a stop");
        let chain = reach.chain(&ws, fn_id(&ws, "C::b"));
        assert_eq!(chain.len(), 3);
        assert!(chain[0].starts_with("C::access ("));
        assert!(chain[2].starts_with("C::b ("));
    }

    #[test]
    fn reverse_reachability_finds_sink_feeders() {
        let ws = ws(&[(
            "crates/sim/src/metrics.rs",
            "struct S;\n\
             impl S {\n\
                 fn collect_stats(&self) { self.digest(); }\n\
                 fn digest(&self) {}\n\
                 fn unrelated(&self) {}\n\
             }\n",
        )]);
        let g = build(&ws);
        let sink = fn_id(&ws, "S::digest");
        let r = ReachesSink::compute(&ws, &g, &[sink]);
        assert!(r.reaches[fn_id(&ws, "S::collect_stats").0]);
        assert!(!r.reaches[fn_id(&ws, "S::unrelated").0]);
        let chain = r.chain(&ws, fn_id(&ws, "S::collect_stats"));
        assert_eq!(chain.len(), 2);
        assert!(chain[1].starts_with("S::digest ("));
    }
}
