//! A minimal Rust lexer: just enough token structure for the rule engine.
//!
//! The linter does not need a parser — every rule keys off token-level
//! patterns (paths, method calls, macro bangs, bracket contexts). What it
//! *does* need is to never misread program text inside comments, string
//! literals or char literals, so the lexer handles those exactly: nested
//! block comments, raw strings with arbitrary `#` fences, byte strings,
//! escapes, and the `'a` lifetime vs `'a'` char-literal ambiguity.

/// One significant (non-comment, non-whitespace) token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// What the token is.
    pub kind: TokenKind,
    /// The token's text. Punctuation is a single character; string
    /// literals carry their *unquoted* content.
    pub text: String,
}

/// Token classification; only the distinctions the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the rules distinguish keywords themselves).
    Ident,
    /// Integer/float literal (lexed so `0xbeef` is not an identifier).
    Number,
    /// String or byte-string literal; `text` is the content.
    Str,
    /// Character literal.
    Char,
    /// A lifetime such as `'a` (without the quote).
    Lifetime,
    /// Single punctuation character.
    Punct,
}

/// A comment, preserved for suppression-directive parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based line the comment ends on.
    pub end_line: usize,
    /// Comment text without the `//` / `/* */` markers.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source`, never failing: unrecognized bytes become punctuation
/// tokens, and unterminated literals run to end of input.
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, line: usize, kind: TokenKind, text: String) {
        self.out.tokens.push(Token { line, kind, text });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(line),
                b'b' if self.peek(1) == Some(b'"') => {
                    self.bump();
                    self.string(line);
                }
                b'r' | b'b' if self.raw_string_ahead() => self.raw_string(line),
                b'\'' => self.char_or_lifetime(line),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(line),
                b'0'..=b'9' => self.number(line),
                _ => {
                    self.bump();
                    self.push(line, TokenKind::Punct, (b as char).to_string());
                }
            }
        }
        self.out
    }

    /// Whether the cursor sits on `r"`, `r#`, `br"` or `br#`.
    fn raw_string_ahead(&self) -> bool {
        let after = if self.peek(0) == Some(b'b') { 1 } else { 0 };
        self.peek(after) == Some(b'r') && matches!(self.peek(after + 1), Some(b'"') | Some(b'#'))
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        // Consume the closing `*/` if present.
        if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
            self.bump();
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
        });
    }

    /// Lexes a `"..."` string whose opening quote is at the cursor.
    fn string(&mut self, line: usize) {
        self.bump(); // opening quote
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.bump(); // closing quote
        self.push(line, TokenKind::Str, text);
    }

    /// Lexes `r"..."` / `r#"..."#` / `br#"..."#` raw strings.
    fn raw_string(&mut self, line: usize) {
        if self.peek(0) == Some(b'b') {
            self.bump();
        }
        self.bump(); // 'r'
        let mut fence = 0usize;
        while self.peek(0) == Some(b'#') {
            fence += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let start = self.pos;
        let mut end = self.pos;
        'scan: while let Some(b) = self.peek(0) {
            if b == b'"' {
                // A quote closes the literal only when followed by `fence` #s.
                for i in 0..fence {
                    if self.peek(1 + i) != Some(b'#') {
                        end = self.pos + 1;
                        self.bump();
                        continue 'scan;
                    }
                }
                end = self.pos;
                self.bump();
                for _ in 0..fence {
                    self.bump();
                }
                break;
            }
            self.bump();
            end = self.pos;
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.push(line, TokenKind::Str, text);
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, line: usize) {
        self.bump(); // opening quote
        let first = self.peek(0);
        let second = self.peek(1);
        let is_lifetime =
            matches!(first, Some(b'_' | b'a'..=b'z' | b'A'..=b'Z')) && second != Some(b'\'');
        if is_lifetime {
            let start = self.pos;
            while matches!(
                self.peek(0),
                Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')
            ) {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(line, TokenKind::Lifetime, text);
            return;
        }
        // Char literal: consume to the closing quote, honoring escapes.
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'\'' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.bump(); // closing quote
        self.push(line, TokenKind::Char, text);
    }

    fn ident(&mut self, line: usize) {
        let start = self.pos;
        while matches!(
            self.peek(0),
            Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')
        ) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(line, TokenKind::Ident, text);
    }

    fn number(&mut self, line: usize) {
        let start = self.pos;
        // Good enough for skipping: digits, hex/bin/oct letters, suffixes,
        // underscores, and a decimal point followed by a digit. Exponent
        // signs (`1e-9`) leave the `-` as punctuation, which no rule reads.
        while let Some(b) = self.peek(0) {
            match b {
                b'0'..=b'9'
                | b'a'..=b'f'
                | b'A'..=b'F'
                | b'x'
                | b'o'
                | b'_'
                | b'u'
                | b'i'
                | b's'
                | b'z' => {
                    self.bump();
                }
                b'.' if matches!(self.peek(1), Some(b'0'..=b'9')) => {
                    self.bump();
                }
                _ => break,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(line, TokenKind::Number, text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_do_not_leak_tokens() {
        let l = lex("// HashMap here\nfn main() {} /* panic! */");
        assert!(idents("// HashMap\nfn f() {}").contains(&"f".to_string()));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
        assert!(!l.tokens.iter().any(|t| t.text == "HashMap"));
        assert!(!l.tokens.iter().any(|t| t.text == "panic"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn x() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* /* a */ b */ fn x() {}"), vec!["fn", "x"]);
        assert!(l.tokens.iter().any(|t| t.text == "x"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "panic!(\"inner\")";"#);
        assert!(!l.tokens.iter().any(|t| t.text == "panic"));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let l = lex(r##"let s = r#"a "quoted" HashMap"#; let t = 1;"##);
        assert!(!l.tokens.iter().any(|t| t.text == "HashMap"));
        assert!(l.tokens.iter().any(|t| t.text == "t"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "a"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "x"));
    }

    #[test]
    fn escaped_char_literal_is_not_a_lifetime() {
        let l = lex(r"let c = '\n'; let d = '\'';");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            2
        );
        assert!(!l.tokens.iter().any(|t| t.kind == TokenKind::Lifetime));
    }

    #[test]
    fn numbers_are_not_identifiers() {
        let l = lex("let x = 0xdead_beef + 1.5e3;");
        assert!(!idents("let x = 0xdead_beef;").contains(&"dead_beef".to_string()));
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::Number));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("fn a() {}\n\nfn b() {}\n");
        let b = l.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }
}
