//! `silcfm-lint`: in-tree static analysis for the SILC-FM workspace.
//!
//! The simulator's credibility rests on three implementation contracts that
//! ordinary tests check only after the fact: **determinism** (bit-identical
//! serial/parallel results), **hermeticity** (no external crates, fully
//! offline builds) and **hot-path discipline** (the access path neither
//! allocates nor panics). This crate checks those contracts *mechanically*,
//! before the build, with a hand-rolled lexer and a token-pattern rule
//! engine — no parser, no dependencies.
//!
//! See [`rules`] for the rule table, [`directives`] for the suppression
//! syntax, and DESIGN.md § Static analysis for how to add a rule.

pub mod cache;
pub mod callgraph;
pub mod directives;
pub mod interproc;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod report;
pub mod rules;
pub mod symbols;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding, anchored to `path:line`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID (`D1`, `D2`, `H1`, `P1`, `A1`, `S1`, `N1`, `F1`, `T1`, `X1`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it (shown under `--fix-hints`).
    pub hint: String,
    /// For interprocedural rules: the call chain connecting this site to
    /// the rule's seed (A1/P1: seed → sink; N1/F1: site → order/parallel
    /// sink), one `Qualified::fn (path:line)` hop per entry. Empty for
    /// file-local rules.
    pub chain: Vec<String>,
}

/// Result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that survived suppression, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of findings silenced by `allow` directives.
    pub suppressed: usize,
    /// Number of files scanned (sources + manifests).
    pub files_scanned: usize,
}

/// The checked-in stat-key registry, relative to the workspace root.
pub const STAT_KEY_REGISTRY: &str = "crates/lint/stat_keys.txt";

/// Key prefix reserved for time-series columns (the `.series` sink).
pub const SERIES_NAMESPACE: &str = "obs.";

// ---- analyzer scope configuration ------------------------------------------
//
// The single source of truth for *where* the interprocedural rules apply.
// Everything below is declarative; the hot set itself is derived by
// reachability over the call graph (see `interproc`), so adding a scheme,
// a feed, or a run-loop variant extends coverage without touching a list.

/// Where the access hot path starts (P1/A1 seeds): every scheme's access
/// methods, every record feed's pull path, the DRAM timing model's
/// per-request charges, and the `System::run*` driver loops.
pub const HOT_PATH_SEEDS: &[interproc::Seed] = &[
    interproc::Seed::TraitMethods {
        trait_name: "MemoryScheme",
        methods: &["access", "access_batch", "access_fresh"],
    },
    interproc::Seed::TraitMethods {
        trait_name: "RecordFeed",
        methods: &["next", "next_chunk"],
    },
    interproc::Seed::TypeMethods {
        ty: "DramModel",
        methods: &["read", "write", "stream"],
    },
    interproc::Seed::TypeMethodPrefix {
        ty: "System",
        prefix: "run",
    },
    // The sharded feed's per-record handoff. Producer side runs in spawned
    // closures and the consumer side is reached through an enum-variant
    // destructure, both of which the call-graph resolver drops — so the
    // queue's per-record operations are declared hot directly.
    interproc::Seed::TypeMethods {
        ty: "LaneQueue",
        methods: &["push", "pop"],
    },
    // The serving plane's per-service completion tap (dispatch side) and
    // per-record admitted-stream pull (admission side): both run once per
    // serviced record inside the run loop, so they are hot-path seeds in
    // their own right — the tap is called through a generic parameter the
    // resolver can't always see through.
    interproc::Seed::TraitMethods {
        trait_name: "ServiceTap",
        methods: &["on_serviced"],
    },
    interproc::Seed::TraitMethods {
        trait_name: "RecordStream",
        methods: &["next_record"],
    },
];

/// Declared amortization boundaries: fns the hot-path closure does *not*
/// enter, each with the justification for why its cost is not per-access.
/// A stale entry (matching no fn) is an X1 error.
pub const AMORTIZED_BOUNDARIES: &[(&str, &str)] = &[
    (
        "RunObs::epoch_tick",
        "runs once per epoch boundary, not per access; its flushes and \
         snapshots are amortized over the whole epoch (DESIGN.md §10)",
    ),
    (
        "RequestTracker::finish_request",
        "runs once per completed request (every records_per_request \
         services), not per access; epoch-bucket growth is amortized over \
         the requests that fill the epoch (DESIGN.md §15)",
    ),
];

/// Order-sensitive sink fns by *name* (N1): folding stats or bytes in
/// argument order.
pub const ORDER_SINK_FNS: &[&str] = &["merge", "digest", "grid_digest"];

/// Order-sensitive sink *files* (N1): every fn in them serializes or
/// folds — crash-journal encoding, the export formatters, and the
/// quantile sketches (whose merges must be order-invariant to the byte
/// for the sharded/journaled percentile plane, DESIGN.md §14).
pub const ORDER_SINK_FILES: &[&str] = &[
    "crates/sim/src/journal.rs",
    "crates/serve/src/journal.rs",
    "crates/obs/src/export.rs",
    "crates/obs/src/sketch.rs",
];

/// Entry points of sharded/parallel execution (F1 seeds), by fn-name
/// prefix.
pub const PARALLEL_SEED_PREFIXES: &[&str] = &["run_grid", "run_system_sharded"];

/// Name markers of merge/aggregation fns F1 inspects.
pub const MERGE_FN_MARKERS: &[&str] = &["merge", "aggregate", "reduce", "accumulate"];

/// The only modules allowed to spawn threads, pass channels, or touch
/// atomics/locks (T1): the epoch-barrier shard runner and the grid runner.
/// Concurrency anywhere else bypasses the deterministic-merge protocol.
pub const SANCTIONED_CONCURRENCY: &[&str] =
    &["crates/sim/src/shard.rs", "crates/sim/src/runner.rs"];

/// Lints one Rust source under its logical workspace path: the full
/// pipeline (token rules + call-graph rules) over a single-file workspace,
/// with suppression directives applied. Exposed for fixture tests;
/// [`lint_workspace`] runs the same logic per real file (plus manifests
/// and the cross-file S1 pass).
pub fn lint_rust_source(path: &str, source: &str) -> (Vec<Finding>, usize) {
    lint_sources(&[(path.to_string(), source.to_string())], &BTreeMap::new())
}

/// Lints a set of in-memory `(logical path, source)` files as one
/// workspace: per-file token rules, then the interprocedural passes over
/// the cross-file call graph, then suppression. This is what the
/// cross-module fixtures drive.
pub fn lint_sources(
    sources: &[(String, String)],
    crate_names: &BTreeMap<String, String>,
) -> (Vec<Finding>, usize) {
    let (kept, suppressed, _, _) = lint_source_set(sources, crate_names, false);
    (kept, suppressed)
}

/// Shared Rust-source pipeline; returns the surviving findings, the
/// suppressed count, per-file allows (for late passes like S1), and the
/// built symbol table (so callers can reuse its lexed files).
fn lint_source_set(
    sources: &[(String, String)],
    crate_names: &BTreeMap<String, String>,
    check_config: bool,
) -> (
    Vec<Finding>,
    usize,
    BTreeMap<String, Vec<directives::Allow>>,
    symbols::Workspace,
) {
    let ws = symbols::Workspace::build(sources, crate_names);
    let mut by_path: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    let mut allows_by_file: BTreeMap<String, Vec<directives::Allow>> = BTreeMap::new();
    for sf in &ws.files {
        let mut findings = Vec::new();
        let allows = directives::parse(&sf.path, &sf.lexed.comments, &mut findings);
        findings.extend(rules::lint_tokens(&sf.path, &sf.lexed));
        by_path.entry(sf.path.clone()).or_default().extend(findings);
        allows_by_file.insert(sf.path.clone(), allows);
    }
    for finding in interproc::lint_graph(&ws, check_config) {
        by_path
            .entry(finding.path.clone())
            .or_default()
            .push(finding);
    }
    let mut kept = Vec::new();
    let mut suppressed = 0;
    for (path, group) in by_path {
        let allows = allows_by_file.get(&path).map(Vec::as_slice).unwrap_or(&[]);
        let (k, s) = directives::apply(group, allows);
        kept.extend(k);
        suppressed += s;
    }
    kept.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    (kept, suppressed, allows_by_file, ws)
}

/// Checks collected stat keys against the registry: every key used by a
/// stats sink must be registered, no file may register the same key twice,
/// and the registry must not carry dead keys. `keys` maps a file path to
/// its `(key, line)` uses; `registry_path` labels registry-side findings.
pub fn check_stat_keys(
    keys: &BTreeMap<String, Vec<(String, usize)>>,
    registry: &str,
    registry_path: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let registered: Vec<(&str, usize)> = registry
        .lines()
        .enumerate()
        .map(|(idx, l)| (l.split('#').next().unwrap_or("").trim(), idx + 1))
        .filter(|(k, _)| !k.is_empty())
        .collect();

    let mut seen_anywhere: Vec<&str> = Vec::new();
    for (path, uses) in keys {
        let mut seen_here: Vec<&str> = Vec::new();
        for (key, line) in uses {
            if seen_here.contains(&key.as_str()) {
                findings.push(Finding {
                    rule: "S1",
                    path: path.clone(),
                    line: *line,
                    message: format!("stat key \"{key}\" is registered twice by this file"),
                    hint: "each scheme must report a key at most once per snapshot".to_string(),
                    chain: Vec::new(),
                });
            }
            seen_here.push(key);
            seen_anywhere.push(key);
            if !registered.iter().any(|(k, _)| *k == key) {
                findings.push(Finding {
                    rule: "S1",
                    path: path.clone(),
                    line: *line,
                    message: format!("stat key \"{key}\" is not in the registry ({registry_path})"),
                    hint: format!("add \"{key}\" to {registry_path} so figure tooling knows it"),
                    chain: Vec::new(),
                });
            }
        }
    }
    for (key, line) in &registered {
        if !seen_anywhere.contains(key) {
            findings.push(Finding {
                rule: "S1",
                path: registry_path.to_string(),
                line: *line,
                message: format!("registered stat key \"{key}\" is emitted by no stats sink"),
                hint: "remove dead keys so the registry stays the source of truth".to_string(),
                chain: Vec::new(),
            });
        }
    }
    findings
}

/// Checks the namespace split between the two S1 sinks: `.series` column
/// keys must live inside [`SERIES_NAMESPACE`] (so figure tooling can tell
/// time-series columns from per-run scheme stats at a glance), and
/// `.detail` keys must stay out of it. Both maps are path → `(key, line)`.
pub fn check_obs_namespace(
    detail: &BTreeMap<String, Vec<(String, usize)>>,
    series: &BTreeMap<String, Vec<(String, usize)>>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (path, uses) in series {
        for (key, line) in uses {
            if !key.starts_with(SERIES_NAMESPACE) {
                findings.push(Finding {
                    rule: "S1",
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "series key \"{key}\" is outside the reserved \
                         \"{SERIES_NAMESPACE}\" namespace"
                    ),
                    hint: format!("name time-series columns \"{SERIES_NAMESPACE}<metric>\""),
                    chain: Vec::new(),
                });
            }
        }
    }
    for (path, uses) in detail {
        for (key, line) in uses {
            if key.starts_with(SERIES_NAMESPACE) {
                findings.push(Finding {
                    rule: "S1",
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "detail key \"{key}\" uses the \"{SERIES_NAMESPACE}\" namespace, \
                         which is reserved for time-series columns"
                    ),
                    hint: "pick an un-prefixed key for per-run scheme stats".to_string(),
                    chain: Vec::new(),
                });
            }
        }
    }
    findings
}

/// Lints the workspace rooted at `root`: every `crates/*/{src,tests,
/// examples,benches}` tree (except the linter's own), the top-level `src/`,
/// `tests/` and `examples/`, and every `Cargo.toml`.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    let crate_names = crate_name_map(root)?;
    let mut sources: Vec<(String, String)> = Vec::new();
    for file in workspace_rust_files(root)? {
        sources.push((logical_path(root, &file), fs::read_to_string(&file)?));
    }

    let (kept, suppressed, allows_by_file, ws) = lint_source_set(&sources, &crate_names, true);
    let mut all = kept;
    report.suppressed += suppressed;
    report.files_scanned += ws.files.len();

    let mut stat_keys: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
    let mut series_keys: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
    for sf in &ws.files {
        let keys = rules::collect_stat_keys(&sf.lexed);
        if !keys.is_empty() {
            stat_keys.insert(sf.path.clone(), keys);
        }
        let series = rules::collect_series_keys(&sf.lexed);
        if !series.is_empty() {
            series_keys.insert(sf.path.clone(), series);
        }
    }

    for manifest_path in workspace_manifests(root)? {
        let logical = logical_path(root, &manifest_path);
        let source = fs::read_to_string(&manifest_path)?;
        let (findings, allows) = manifest::lint_manifest(&logical, &source);
        let (kept, suppressed) = directives::apply(findings, &allows);
        report.suppressed += suppressed;
        all.extend(kept);
        report.files_scanned += 1;
    }

    // S1 runs once over all collected keys; per-file directives still apply.
    // Both sinks share the one registry, so the merged map feeds the
    // registered/duplicate/dead checks; the namespace split is checked on
    // the per-sink maps.
    let mut merged = stat_keys.clone();
    for (path, uses) in &series_keys {
        merged
            .entry(path.clone())
            .or_default()
            .extend(uses.iter().cloned());
    }
    let registry = fs::read_to_string(root.join(STAT_KEY_REGISTRY)).unwrap_or_default();
    let mut s1 = check_stat_keys(&merged, &registry, STAT_KEY_REGISTRY);
    s1.extend(check_obs_namespace(&stat_keys, &series_keys));
    for finding in s1 {
        let allows = allows_by_file
            .get(&finding.path)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        if allows.iter().any(|a| a.covers(finding.rule, finding.line)) {
            report.suppressed += 1;
        } else {
            all.push(finding);
        }
    }

    all.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    report.findings = all;
    Ok(report)
}

/// Content hashes of every input the linter reads — Rust sources, manifests
/// and the stat-key registry — keyed by logical path. This is the domain of
/// the incremental cache's fingerprint: if none of these bytes changed (and
/// the analyzer configuration didn't either), the previous report replays.
pub fn input_hashes(root: &Path) -> std::io::Result<BTreeMap<String, u64>> {
    let mut hashes = BTreeMap::new();
    for file in workspace_rust_files(root)? {
        hashes.insert(logical_path(root, &file), cache::fnv1a(&fs::read(&file)?));
    }
    for m in workspace_manifests(root)? {
        hashes.insert(logical_path(root, &m), cache::fnv1a(&fs::read(&m)?));
    }
    let registry = root.join(STAT_KEY_REGISTRY);
    if registry.is_file() {
        hashes.insert(
            STAT_KEY_REGISTRY.to_string(),
            cache::fnv1a(&fs::read(&registry)?),
        );
    }
    Ok(hashes)
}

/// Workspace-relative forward-slash path of `file`.
pub fn logical_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Every Rust source the linter scans, sorted for deterministic reports.
pub fn workspace_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    for krate in crate_dirs(root)? {
        // The linter's own sources mention every forbidden token by design,
        // and its fixtures are deliberately bad code.
        if krate.file_name().is_some_and(|n| n == "lint") {
            continue;
        }
        for sub in ["src", "tests", "examples", "benches"] {
            collect_rs(&krate.join(sub), &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Every `.rs` file in the workspace, *including* the linter's own sources
/// and fixtures (which the rule walker skips). The parser property tests
/// use this: the item parser must consume literally everything, bad
/// fixtures included — they are valid Rust, just contract-violating.
pub fn all_workspace_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    for krate in crate_dirs(root)? {
        for sub in ["src", "tests", "examples", "benches"] {
            collect_rs(&krate.join(sub), &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Every manifest the linter checks (including the linter's own).
fn workspace_manifests(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut manifests = vec![root.join("Cargo.toml")];
    for krate in crate_dirs(root)? {
        manifests.push(krate.join("Cargo.toml"));
    }
    manifests.retain(|m| m.is_file());
    Ok(manifests)
}

/// `crates/<dir>` directory name → package name, parsed from each crate's
/// `Cargo.toml` (`name = "..."` under `[package]`, which leads the file).
pub fn crate_name_map(root: &Path) -> std::io::Result<BTreeMap<String, String>> {
    let mut map = BTreeMap::new();
    for dir in crate_dirs(root)? {
        let Ok(src) = fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let Some(name) = src.lines().find_map(|line| {
            line.trim()
                .strip_prefix("name")
                .and_then(|r| r.trim_start().strip_prefix('='))
                .map(|r| r.trim().trim_matches('"').to_string())
        }) else {
            continue;
        };
        if let Some(d) = dir.file_name() {
            map.insert(d.to_string_lossy().to_string(), name);
        }
    }
    Ok(map)
}

fn crate_dirs(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Ok(Vec::new());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(&crates)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
