//! `silcfm-lint`: in-tree static analysis for the SILC-FM workspace.
//!
//! The simulator's credibility rests on three implementation contracts that
//! ordinary tests check only after the fact: **determinism** (bit-identical
//! serial/parallel results), **hermeticity** (no external crates, fully
//! offline builds) and **hot-path discipline** (the access path neither
//! allocates nor panics). This crate checks those contracts *mechanically*,
//! before the build, with a hand-rolled lexer and a token-pattern rule
//! engine — no parser, no dependencies.
//!
//! See [`rules`] for the rule table, [`directives`] for the suppression
//! syntax, and DESIGN.md § Static analysis for how to add a rule.

pub mod directives;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding, anchored to `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID (`D1`, `D2`, `H1`, `P1`, `A1`, `S1`, `X1`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it (shown under `--fix-hints`).
    pub hint: String,
}

/// Result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that survived suppression, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of findings silenced by `allow` directives.
    pub suppressed: usize,
    /// Number of files scanned (sources + manifests).
    pub files_scanned: usize,
}

/// The checked-in stat-key registry, relative to the workspace root.
pub const STAT_KEY_REGISTRY: &str = "crates/lint/stat_keys.txt";

/// Key prefix reserved for time-series columns (the `.series` sink).
pub const SERIES_NAMESPACE: &str = "obs.";

/// Lints one Rust source under its logical workspace path, applying
/// suppression directives. Exposed for fixture tests; [`lint_workspace`]
/// runs the same logic per real file (plus the cross-file S1 pass).
pub fn lint_rust_source(path: &str, source: &str) -> (Vec<Finding>, usize) {
    let lexed = lexer::lex(source);
    let mut findings = Vec::new();
    let allows = directives::parse(path, &lexed.comments, &mut findings);
    findings.extend(rules::lint_tokens(path, &lexed));
    directives::apply(findings, &allows)
}

/// Checks collected stat keys against the registry: every key used by a
/// stats sink must be registered, no file may register the same key twice,
/// and the registry must not carry dead keys. `keys` maps a file path to
/// its `(key, line)` uses; `registry_path` labels registry-side findings.
pub fn check_stat_keys(
    keys: &BTreeMap<String, Vec<(String, usize)>>,
    registry: &str,
    registry_path: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let registered: Vec<(&str, usize)> = registry
        .lines()
        .enumerate()
        .map(|(idx, l)| (l.split('#').next().unwrap_or("").trim(), idx + 1))
        .filter(|(k, _)| !k.is_empty())
        .collect();

    let mut seen_anywhere: Vec<&str> = Vec::new();
    for (path, uses) in keys {
        let mut seen_here: Vec<&str> = Vec::new();
        for (key, line) in uses {
            if seen_here.contains(&key.as_str()) {
                findings.push(Finding {
                    rule: "S1",
                    path: path.clone(),
                    line: *line,
                    message: format!("stat key \"{key}\" is registered twice by this file"),
                    hint: "each scheme must report a key at most once per snapshot".to_string(),
                });
            }
            seen_here.push(key);
            seen_anywhere.push(key);
            if !registered.iter().any(|(k, _)| *k == key) {
                findings.push(Finding {
                    rule: "S1",
                    path: path.clone(),
                    line: *line,
                    message: format!("stat key \"{key}\" is not in the registry ({registry_path})"),
                    hint: format!("add \"{key}\" to {registry_path} so figure tooling knows it"),
                });
            }
        }
    }
    for (key, line) in &registered {
        if !seen_anywhere.contains(key) {
            findings.push(Finding {
                rule: "S1",
                path: registry_path.to_string(),
                line: *line,
                message: format!("registered stat key \"{key}\" is emitted by no stats sink"),
                hint: "remove dead keys so the registry stays the source of truth".to_string(),
            });
        }
    }
    findings
}

/// Checks the namespace split between the two S1 sinks: `.series` column
/// keys must live inside [`SERIES_NAMESPACE`] (so figure tooling can tell
/// time-series columns from per-run scheme stats at a glance), and
/// `.detail` keys must stay out of it. Both maps are path → `(key, line)`.
pub fn check_obs_namespace(
    detail: &BTreeMap<String, Vec<(String, usize)>>,
    series: &BTreeMap<String, Vec<(String, usize)>>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (path, uses) in series {
        for (key, line) in uses {
            if !key.starts_with(SERIES_NAMESPACE) {
                findings.push(Finding {
                    rule: "S1",
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "series key \"{key}\" is outside the reserved \
                         \"{SERIES_NAMESPACE}\" namespace"
                    ),
                    hint: format!("name time-series columns \"{SERIES_NAMESPACE}<metric>\""),
                });
            }
        }
    }
    for (path, uses) in detail {
        for (key, line) in uses {
            if key.starts_with(SERIES_NAMESPACE) {
                findings.push(Finding {
                    rule: "S1",
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "detail key \"{key}\" uses the \"{SERIES_NAMESPACE}\" namespace, \
                         which is reserved for time-series columns"
                    ),
                    hint: "pick an un-prefixed key for per-run scheme stats".to_string(),
                });
            }
        }
    }
    findings
}

/// Lints the workspace rooted at `root`: every `crates/*/{src,tests,
/// examples,benches}` tree (except the linter's own), the top-level `src/`,
/// `tests/` and `examples/`, and every `Cargo.toml`.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut all = Vec::new();
    let mut stat_keys: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
    let mut series_keys: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
    let mut allows_by_file: BTreeMap<String, Vec<directives::Allow>> = BTreeMap::new();

    for file in workspace_rust_files(root)? {
        let logical = logical_path(root, &file);
        let source = fs::read_to_string(&file)?;
        let lexed = lexer::lex(&source);
        let mut findings = Vec::new();
        let allows = directives::parse(&logical, &lexed.comments, &mut findings);
        findings.extend(rules::lint_tokens(&logical, &lexed));
        let keys = rules::collect_stat_keys(&lexed);
        if !keys.is_empty() {
            stat_keys.insert(logical.clone(), keys);
        }
        let series = rules::collect_series_keys(&lexed);
        if !series.is_empty() {
            series_keys.insert(logical.clone(), series);
        }
        let (kept, suppressed) = directives::apply(findings, &allows);
        report.suppressed += suppressed;
        all.extend(kept);
        allows_by_file.insert(logical, allows);
        report.files_scanned += 1;
    }

    for manifest_path in workspace_manifests(root)? {
        let logical = logical_path(root, &manifest_path);
        let source = fs::read_to_string(&manifest_path)?;
        let (findings, allows) = manifest::lint_manifest(&logical, &source);
        let (kept, suppressed) = directives::apply(findings, &allows);
        report.suppressed += suppressed;
        all.extend(kept);
        report.files_scanned += 1;
    }

    // S1 runs once over all collected keys; per-file directives still apply.
    // Both sinks share the one registry, so the merged map feeds the
    // registered/duplicate/dead checks; the namespace split is checked on
    // the per-sink maps.
    let mut merged = stat_keys.clone();
    for (path, uses) in &series_keys {
        merged
            .entry(path.clone())
            .or_default()
            .extend(uses.iter().cloned());
    }
    let registry = fs::read_to_string(root.join(STAT_KEY_REGISTRY)).unwrap_or_default();
    let mut s1 = check_stat_keys(&merged, &registry, STAT_KEY_REGISTRY);
    s1.extend(check_obs_namespace(&stat_keys, &series_keys));
    for finding in s1 {
        let allows = allows_by_file
            .get(&finding.path)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        if allows.iter().any(|a| a.covers(finding.rule, finding.line)) {
            report.suppressed += 1;
        } else {
            all.push(finding);
        }
    }

    all.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    report.findings = all;
    Ok(report)
}

/// Workspace-relative forward-slash path of `file`.
fn logical_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Every Rust source the linter scans, sorted for deterministic reports.
fn workspace_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    for krate in crate_dirs(root)? {
        // The linter's own sources mention every forbidden token by design,
        // and its fixtures are deliberately bad code.
        if krate.file_name().is_some_and(|n| n == "lint") {
            continue;
        }
        for sub in ["src", "tests", "examples", "benches"] {
            collect_rs(&krate.join(sub), &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Every manifest the linter checks (including the linter's own).
fn workspace_manifests(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut manifests = vec![root.join("Cargo.toml")];
    for krate in crate_dirs(root)? {
        manifests.push(krate.join("Cargo.toml"));
    }
    manifests.retain(|m| m.is_file());
    Ok(manifests)
}

fn crate_dirs(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Ok(Vec::new());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(&crates)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
