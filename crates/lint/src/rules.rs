//! The rule engine: token-pattern rules over one lexed source file.
//!
//! | ID | Contract | What fires |
//! |----|----------|------------|
//! | D1 | determinism | `std::collections::{HashMap,HashSet}` (default SipHash hasher) |
//! | D2 | determinism | `std::time::{Instant,SystemTime}`, `std::env::{var,var_os,vars}` |
//! | E1 | fallibility | `.unwrap()` / `.expect(` / `panic!` outside tests in setup/config modules |
//! | H1 | hermeticity | non-workspace-path dependency in a `Cargo.toml` (see `manifest`) |
//! | P1 | panic-safety | panic-capable sites reachable from the hot-path seeds (see `interproc`) |
//! | A1 | allocation | allocation sites reachable from the hot-path seeds (see `interproc`) |
//! | N1 | determinism | unsorted hash iteration feeding an order-sensitive sink (see `interproc`) |
//! | F1 | determinism | unordered float reductions on merge paths of parallel runs (see `interproc`) |
//! | T1 | determinism | threads/channels/atomics outside the sanctioned concurrency modules |
//! | S1 | stats | duplicate or unregistered `&'static str` stat keys (see `lib.rs`) |
//! | X1 | tooling | malformed suppression directive (see `directives`) |
//!
//! P1/A1/N1/F1 are *interprocedural*: their passes live in
//! [`crate::interproc`] and run over the workspace call graph; this module
//! hosts the purely file-local rules.

use std::ops::Range;

use crate::lexer::{Lexed, Token, TokenKind};
use crate::Finding;

/// Every rule ID the linter knows, in reporting order.
pub const RULE_IDS: &[&str] = &[
    "D1", "D2", "E1", "H1", "P1", "A1", "N1", "F1", "T1", "S1", "X1",
];

/// Long-form rationale per rule, shown by `silcfm-lint --explain <RULE>`.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "D1" => {
            "D1 (determinism): std's HashMap/HashSet seed SipHash per process, so \
             iteration order differs between runs and machines. Any order leak — a \
             stats dump, a tie-break, a work list — breaks bit-identical replays. \
             Use the workspace FxHashMap/FxHashSet (fixed seed) or a BTreeMap."
        }
        "D2" => {
            "D2 (determinism): wall-clock time (Instant/SystemTime) and environment \
             reads make a run depend on when/where it executes. Simulated time comes \
             from the DRAM model's cycle counters; configuration comes from typed \
             experiment params, never from env vars."
        }
        "E1" => {
            "E1 (fallibility): setup and configuration code (param validation, DRAM \
             config, experiment drivers, the fault plane) must return typed errors, \
             not panic — the journaled grid runner reports a bad point and carries \
             on with the rest of the grid. unwrap/expect/panic! are fine in tests."
        }
        "H1" => {
            "H1 (hermeticity): every dependency must be a workspace path dep. A \
             registry dependency would break offline builds and tie results to \
             whatever version resolution picked that day."
        }
        "P1" => {
            "P1 (panic-safety, interprocedural): no unwrap/expect/panic!/bare \
             indexing anywhere reachable from a hot-path seed (every \
             MemoryScheme::access* impl, RecordFeed::next*, DramModel \
             read/write/stream, System::run*). A panic mid-access poisons the \
             epoch journal. The finding's call chain shows seed-to-site \
             reachability; use get()/checked ops and return SilcFmError."
        }
        "A1" => {
            "A1 (allocation, interprocedural): no Vec::new/Box::new/vec!/format!/ \
             to_vec anywhere reachable from a hot-path seed — per-access allocation \
             is the top simulator slowdown at trace scale. Preallocate in setup and \
             reuse scratch buffers; declared amortization boundaries (lib.rs \
             AMORTIZED_BOUNDARIES) stop the traversal where cost is per-epoch."
        }
        "N1" => {
            "N1 (determinism, interprocedural): iterating a hash map in a function \
             from which an order-sensitive sink is reachable (merge/digest fns, the \
             crash journal, the exporters) leaks nondeterministic order into \
             results. Sort the keys first, or fold into an order-insensitive \
             accumulator the rule recognizes (commutative += per key)."
        }
        "F1" => {
            "F1 (determinism, interprocedural): float addition is not associative, \
             so an unordered f32/f64 sum/product/fold in a merge/aggregate fn \
             reachable from the sharded or grid runners makes parallel results \
             differ from serial. Fix the reduction order (sort, or fold shard \
             results in shard-index order) or accumulate in integers."
        }
        "T1" => {
            "T1 (determinism): threads, channels, atomics and locks are allowed \
             only in the sanctioned modules (the epoch-barrier shard runner and \
             the grid runner), which own the deterministic-merge protocol. \
             Concurrency anywhere else bypasses that protocol."
        }
        "S1" => {
            "S1 (stats): every stat key a sink emits must be registered in \
             crates/lint/stat_keys.txt, at most once per file, with no dead \
             registry entries; series keys live under the reserved \"obs.\" \
             namespace. Figure tooling treats the registry as the schema."
        }
        "X1" => {
            "X1 (tooling): the linter's own inputs are malformed — an unparseable \
             suppression directive, an unknown rule ID in allow(...), or a stale \
             analyzer-scope constant (e.g. an AMORTIZED_BOUNDARIES entry matching \
             no fn). X1 is not suppressible; fix the directive or the constant."
        }
        _ => return None,
    })
}

/// Setup/configuration modules where E1 applies: validation and
/// construction code that callers invoke before a run starts. A bad knob
/// must surface as a typed [`SilcFmError`], not a panic, so experiment
/// drivers (and the crash-safe journaled runner in particular) can report
/// it and carry on with the rest of a grid.
pub const SETUP_MODULES: &[&str] = &[
    "crates/dram/src/config.rs",
    "crates/core/src/params.rs",
    "crates/sim/src/experiment.rs",
];

/// Path prefixes (entire crates) in E1 scope. The fault plane is pure
/// setup-and-schedule code: nothing in it runs on the access hot path.
pub const SETUP_PREFIXES: &[&str] = &["crates/fault/src/"];

/// Whether E1 applies to this logical path.
fn setup_scope(path: &str) -> bool {
    SETUP_MODULES.contains(&path) || SETUP_PREFIXES.iter().any(|p| path.starts_with(p))
}

/// Rust keywords: identifiers that never name an indexable value, a called
/// function, or a path segment of interest.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while", "yield",
];

pub(crate) fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// Whether D1/D2/T1 source rules apply to this logical path (forward
/// slashes). Tooling crates are exempt: the benchmark harness legitimately
/// reads the wall clock and the linter itself reads the filesystem.
pub(crate) fn determinism_scope(path: &str) -> bool {
    !path.starts_with("crates/bench/") && !path.starts_with("crates/lint/")
}

/// Whether D2 applies: the hermetic property harness (`silcfm-types::check`)
/// is additionally exempt by design (ISSUE 3), as the replay-seed printer
/// may grow environment hooks.
fn d2_scope(path: &str) -> bool {
    determinism_scope(path) && path != "crates/types/src/check.rs"
}

/// Runs every source-level rule over one lexed file, returning raw
/// (unsuppressed) findings. `path` is the workspace-relative path with
/// forward slashes.
pub fn lint_tokens(path: &str, lexed: &Lexed) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &lexed.tokens;
    let test_spans = test_spans(toks);
    let in_test = |line: usize| test_spans.iter().any(|s| s.contains(&line));

    if determinism_scope(path) {
        scan_paths(toks, |segments, line| {
            if has_pair(segments, "collections", &["HashMap", "HashSet"]) {
                findings.push(Finding {
                    rule: "D1",
                    path: path.to_string(),
                    line,
                    message: format!(
                        "default-hasher `{}`: SipHash is randomly keyed and its iteration \
                         order can leak into results",
                        segments.join("::")
                    ),
                    hint: "use `silcfm_types::FxHashMap` / `FxHashSet` (deterministic, faster)"
                        .to_string(),
                    chain: Vec::new(),
                });
            }
            if d2_scope(path)
                && (has_pair(segments, "time", &["Instant", "SystemTime"])
                    || has_pair(segments, "env", &["var", "var_os", "vars"]))
            {
                findings.push(Finding {
                    rule: "D2",
                    path: path.to_string(),
                    line,
                    message: format!(
                        "environment-dependent API `{}`: wall-clock and env reads make runs \
                         unreproducible",
                        segments.join("::")
                    ),
                    hint: "derive behaviour from explicit config/seeds; timing belongs in \
                           crates/bench"
                        .to_string(),
                    chain: Vec::new(),
                });
            }
        });
    }

    // T1 binds shipped simulator code; integration-test and example roots
    // may drive the runner however they like.
    let test_root = ["/tests/", "/examples/", "/benches/"]
        .iter()
        .any(|seg| path.contains(seg));
    if determinism_scope(path) && !test_root && !crate::SANCTIONED_CONCURRENCY.contains(&path) {
        lint_concurrency(path, toks, &mut findings, &in_test);
    }

    if setup_scope(path) {
        lint_setup_fallibility(path, toks, &mut findings, &in_test);
    }

    findings
}

/// Collects `&'static str` keys passed as the first argument of a named
/// sink method, i.e. the `.sink("key", ...)` pattern. Only string literals
/// are collected: a key passed through a `const` binding is deliberately
/// invisible to the audit.
fn collect_sink_keys(lexed: &Lexed, sink: &str) -> Vec<(String, usize)> {
    let toks = &lexed.tokens;
    let mut keys = Vec::new();
    for i in 0..toks.len() {
        if punct(toks.get(i), '.') && ident(toks.get(i + 1), sink) && punct(toks.get(i + 2), '(') {
            if let Some(t) = toks.get(i + 3) {
                if t.kind == TokenKind::Str {
                    keys.push((t.text.clone(), t.line));
                }
            }
        }
    }
    keys
}

/// Collects `&'static str` stat keys passed to `SchemeStats::detail`, i.e.
/// the `.detail("key", ...)` sink. Returns `(key, line)` pairs.
pub fn collect_stat_keys(lexed: &Lexed) -> Vec<(String, usize)> {
    collect_sink_keys(lexed, "detail")
}

/// Collects time-series column keys passed to `SeriesSpec::series`, i.e.
/// the `.series("key")` sink. These share the S1 registry with stat keys
/// and must live in the reserved `obs.` namespace (see `lib.rs`).
pub fn collect_series_keys(lexed: &Lexed) -> Vec<(String, usize)> {
    collect_sink_keys(lexed, "series")
}

// ---- T1: concurrency containment -------------------------------------------

/// Synchronization primitives whose mere presence marks ad-hoc concurrency.
const SYNC_PRIMITIVES: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier", "OnceLock"];

/// T1: thread spawns, channels, atomics and locks outside the sanctioned
/// concurrency modules (see [`crate::SANCTIONED_CONCURRENCY`]). The shard
/// and grid runners own *all* parallelism so the epoch-barrier merge can
/// guarantee bit-identical serial/parallel results; a rogue thread or a
/// shared atomic anywhere else reintroduces scheduling-order dependence.
fn lint_concurrency(
    path: &str,
    toks: &[Token],
    findings: &mut Vec<Finding>,
    in_test: &dyn Fn(usize) -> bool,
) {
    let hint = "route parallelism through the shard/grid runners (crates/sim/src/shard.rs, \
                runner.rs) so the deterministic merge protocol sees it";
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || in_test(t.line) {
            continue;
        }
        let what = if t.text == "spawn" && punct(toks.get(i + 1), '(') {
            Some("thread spawn")
        } else if t.text == "mpsc" {
            Some("channel plumbing")
        } else if t.text.starts_with("Atomic") && t.text.len() > "Atomic".len() {
            Some("shared atomic")
        } else if SYNC_PRIMITIVES.contains(&t.text.as_str()) {
            Some("synchronization primitive")
        } else {
            None
        };
        if let Some(what) = what {
            findings.push(Finding {
                rule: "T1",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "{what} `{}` outside the sanctioned concurrency modules",
                    t.text
                ),
                hint: hint.to_string(),
                chain: Vec::new(),
            });
        }
    }
}

// ---- E1: setup fallibility -------------------------------------------------

fn lint_setup_fallibility(
    path: &str,
    toks: &[Token],
    findings: &mut Vec<Finding>,
    in_test: &dyn Fn(usize) -> bool,
) {
    let hint = "return `Result<_, SilcFmError>` so experiment drivers can report the bad \
                knob and continue the rest of the grid";
    for i in 0..toks.len() {
        let t = &toks[i];
        if in_test(t.line) {
            continue;
        }
        if punct(Some(t), '.') {
            if let Some(name) = toks.get(i + 1) {
                if name.kind == TokenKind::Ident
                    && (name.text == "unwrap" || name.text == "expect")
                    && punct(toks.get(i + 2), '(')
                {
                    findings.push(Finding {
                        rule: "E1",
                        path: path.to_string(),
                        line: name.line,
                        message: format!(
                            "`.{}(` in setup code turns a bad configuration into a crash",
                            name.text
                        ),
                        hint: hint.to_string(),
                        chain: Vec::new(),
                    });
                }
            }
        }
        if t.kind == TokenKind::Ident && t.text == "panic" && punct(toks.get(i + 1), '!') {
            findings.push(Finding {
                rule: "E1",
                path: path.to_string(),
                line: t.line,
                message: "`panic!` in setup code turns a bad configuration into a crash"
                    .to_string(),
                hint: hint.to_string(),
                chain: Vec::new(),
            });
        }
    }
}

// ---- token-pattern helpers -------------------------------------------------

fn punct(t: Option<&Token>, c: char) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
}

fn ident(t: Option<&Token>, name: &str) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
}

/// Whether `segments` contains `qualifier` immediately followed by one of
/// `leaves`.
fn has_pair(segments: &[String], qualifier: &str, leaves: &[&str]) -> bool {
    segments
        .windows(2)
        .any(|w| w[0] == qualifier && leaves.iter().any(|l| w[1] == *l))
}

/// Scans `::`-joined paths, including grouped `use` trees
/// (`use std::collections::{HashMap, HashSet}`), and calls `f` with the
/// full segment list and the leaf's line for every path leaf.
fn scan_paths(toks: &[Token], mut f: impl FnMut(&[String], usize)) {
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
            // Only start a path at a non-qualified position: skip idents
            // preceded by `::` (mid-path) or `.` (field/method).
            let qualified = i >= 2 && punct(toks.get(i - 1), ':') && punct(toks.get(i - 2), ':');
            let after_dot = i >= 1 && punct(toks.get(i - 1), '.');
            if !qualified && !after_dot {
                let mut segments = vec![t.text.clone()];
                i = walk_path(toks, i + 1, &mut segments, &mut f);
                if segments.len() > 1 {
                    f(
                        &segments,
                        toks[i.saturating_sub(1).min(toks.len() - 1)].line,
                    );
                }
                continue;
            }
        }
        i += 1;
    }
}

/// Continues a path after its first segment; returns the index just past
/// the path. Recurses into `{...}` use-groups, reporting each leaf.
fn walk_path(
    toks: &[Token],
    mut i: usize,
    segments: &mut Vec<String>,
    f: &mut impl FnMut(&[String], usize),
) -> usize {
    while punct(toks.get(i), ':') && punct(toks.get(i + 1), ':') {
        match toks.get(i + 2) {
            Some(t) if t.kind == TokenKind::Ident && !is_keyword(&t.text) => {
                segments.push(t.text.clone());
                i += 3;
            }
            Some(t) if t.kind == TokenKind::Punct && t.text == "{" => {
                // Use-group: each element extends the current prefix.
                i += 3;
                let mut depth = 1usize;
                while i < toks.len() && depth > 0 {
                    let t = &toks[i];
                    if t.kind == TokenKind::Punct {
                        match t.text.as_str() {
                            "{" => depth += 1,
                            "}" => depth -= 1,
                            _ => {}
                        }
                        i += 1;
                        continue;
                    }
                    if depth == 1 && t.kind == TokenKind::Ident && !is_keyword(&t.text) {
                        let mut sub = segments.clone();
                        sub.push(t.text.clone());
                        let line = t.line;
                        i = walk_path(toks, i + 1, &mut sub, f);
                        f(&sub, line);
                        continue;
                    }
                    i += 1;
                }
                return i;
            }
            _ => break,
        }
    }
    i
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Line ranges covered by `#[cfg(test)]` items (conventionally
/// `mod tests { ... }`): the hot-path and concurrency contracts bind
/// shipped code, not tests.
pub(crate) fn test_spans(toks: &[Token]) -> Vec<Range<usize>> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = punct(toks.get(i), '#')
            && punct(toks.get(i + 1), '[')
            && ident(toks.get(i + 2), "cfg")
            && punct(toks.get(i + 3), '(')
            && ident(toks.get(i + 4), "test")
            && punct(toks.get(i + 5), ')')
            && punct(toks.get(i + 6), ']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then span the item's braces.
        let mut j = i + 7;
        while punct(toks.get(j), '#') && punct(toks.get(j + 1), '[') {
            let mut depth = 0i32;
            while let Some(t) = toks.get(j) {
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            j += 1;
        }
        let mut paren = 0i32;
        while let Some(t) = toks.get(j) {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    ";" if paren == 0 => break,
                    "{" if paren == 0 => {
                        let close = matching_brace(toks, j);
                        spans.push(toks[j].line..toks[close].line + 1);
                        i = close;
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rules_of(path: &str, src: &str) -> Vec<(&'static str, usize)> {
        lint_tokens(path, &lex(src))
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn d1_fires_on_plain_and_grouped_imports() {
        let hits = rules_of(
            "crates/core/src/lib.rs",
            "use std::collections::HashMap;\nuse std::collections::{BTreeMap, HashSet};\n",
        );
        assert_eq!(hits, vec![("D1", 1), ("D1", 2)]);
    }

    #[test]
    fn d1_fires_on_inline_paths_and_spares_fx() {
        let hits = rules_of(
            "crates/sim/src/lib.rs",
            "fn f() { let s = std::collections::HashSet::<u64>::new(); }\n\
             fn g() { let m = silcfm_types::FxHashMap::<u64, u64>::default(); }\n",
        );
        assert_eq!(hits, vec![("D1", 1)]);
    }

    #[test]
    fn d2_fires_on_time_and_env() {
        let hits = rules_of(
            "crates/sim/src/lib.rs",
            "use std::time::Instant;\nfn f() { let _ = std::env::var(\"X\"); }\n",
        );
        assert_eq!(hits, vec![("D2", 1), ("D2", 2)]);
    }

    #[test]
    fn d2_spares_bench_and_check() {
        assert!(rules_of("crates/bench/src/timing.rs", "use std::time::Instant;").is_empty());
        assert!(rules_of("crates/types/src/check.rs", "use std::time::Instant;").is_empty());
        // ... but check.rs is NOT exempt from D1.
        assert_eq!(
            rules_of(
                "crates/types/src/check.rs",
                "use std::collections::HashSet;"
            ),
            vec![("D1", 1)]
        );
    }

    #[test]
    fn t1_fires_on_spawns_channels_atomics_and_locks() {
        let src = "fn f() {\n\
                       let h = thread::spawn(|| 1);\n\
                       let (tx, rx) = mpsc::channel();\n\
                       let n = AtomicU64::new(0);\n\
                       let m = Mutex::new(1);\n\
                       let _ = (h, tx, rx, n, m);\n\
                   }\n";
        let hits = rules_of("crates/sim/src/metrics.rs", src);
        assert_eq!(
            hits,
            vec![("T1", 2), ("T1", 3), ("T1", 4), ("T1", 5)],
            "one per site"
        );
    }

    #[test]
    fn t1_spares_the_sanctioned_modules_and_tests() {
        let src = "fn f() { let h = thread::spawn(|| 1); let _ = h; }\n";
        assert!(rules_of("crates/sim/src/shard.rs", src).is_empty());
        assert!(rules_of("crates/sim/src/runner.rs", src).is_empty());
        assert!(rules_of("crates/bench/src/main.rs", src).is_empty());
        assert!(rules_of("crates/sim/tests/stress.rs", src).is_empty());
        let in_test = "#[cfg(test)]\n\
                       mod tests {\n\
                           fn t() { let n = AtomicU64::new(0); let _ = n; }\n\
                       }\n";
        assert!(rules_of("crates/sim/src/metrics.rs", in_test).is_empty());
    }

    #[test]
    fn t1_does_not_match_plain_idents() {
        // `Atomic` alone, `spawner` without a call, a fn *named* spawn-ish.
        let src = "fn respawn_lane(x: u64) -> u64 { x }\n\
                   fn g(spawner: u64) -> u64 { respawn_lane(spawner) }\n";
        assert!(rules_of("crates/sim/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn e1_fires_in_setup_modules_and_crates() {
        let src = "fn build(v: Option<u32>) -> u32 { v.unwrap() }\n\
                   fn check(ok: bool) { if !ok { panic!(\"bad\"); } }\n";
        assert_eq!(
            rules_of("crates/dram/src/config.rs", src),
            vec![("E1", 1), ("E1", 2)]
        );
        assert_eq!(
            rules_of("crates/fault/src/schedule.rs", src),
            vec![("E1", 1), ("E1", 2)]
        );
        // Ordinary simulator code is out of E1 scope.
        assert!(rules_of("crates/sim/src/runner.rs", src).is_empty());
    }

    #[test]
    fn e1_skips_test_modules() {
        let src = "fn build(v: Option<u32>) -> u32 { v.unwrap_or(0) }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { assert_eq!(super::build(Some(1)), Some(1).unwrap()); }\n\
                   }\n";
        assert!(rules_of("crates/core/src/params.rs", src).is_empty());
    }

    #[test]
    fn stat_keys_are_collected_across_lines() {
        let keys = collect_stat_keys(&lex(
            "fn stats(&self) { s.detail(\"locks\", 1.0); s.detail(\n    \"swaps\", 2.0); }",
        ));
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].0, "locks");
        assert_eq!(keys[1].0, "swaps");
        assert_eq!(keys[1].1, 2);
    }
}
