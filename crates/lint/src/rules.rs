//! The rule engine: token-pattern rules over one lexed source file.
//!
//! | ID | Contract | What fires |
//! |----|----------|------------|
//! | D1 | determinism | `std::collections::{HashMap,HashSet}` (default SipHash hasher) |
//! | D2 | determinism | `std::time::{Instant,SystemTime}`, `std::env::{var,var_os,vars}` |
//! | E1 | fallibility | `.unwrap()` / `.expect(` / `panic!` outside tests in setup/config modules |
//! | H1 | hermeticity | non-workspace-path dependency in a `Cargo.toml` (see `manifest`) |
//! | P1 | panic-safety | `.unwrap()` / `.expect(` / `panic!` / bare `[...]` indexing in hot-path modules |
//! | A1 | allocation | `Vec::new` / `vec![` / `Box::new` / `.to_vec()` / `format!` reachable from the access hot path |
//! | S1 | stats | duplicate or unregistered `&'static str` stat keys (see `lib.rs`) |
//! | X1 | tooling | malformed suppression directive (see `directives`) |

use std::collections::BTreeMap;
use std::ops::Range;

use crate::lexer::{Lexed, Token, TokenKind};
use crate::Finding;

/// Every rule ID the linter knows, in reporting order.
pub const RULE_IDS: &[&str] = &["D1", "D2", "E1", "H1", "P1", "A1", "S1", "X1"];

/// File names (not paths) of the designated hot-path modules: the files
/// where P1 and A1 apply. These are the modules on the per-access critical
/// path of the simulator (see DESIGN.md § Static analysis).
pub const HOT_MODULES: &[&str] = &[
    "controller.rs",
    "set_assoc.rs",
    "model.rs",
    "oplist.rs",
    "system.rs",
    "shard.rs",
    "batch.rs",
    "frametable.rs",
];

/// Per-module entry points of the access hot path, used as the reachability
/// seeds for A1. Reachability is computed over the file-local call graph:
/// a function is hot if a chain of same-file calls connects it to a seed.
pub const HOT_SEEDS: &[(&str, &[&str])] = &[
    ("controller.rs", &["access"]),
    ("set_assoc.rs", &["access"]),
    ("model.rs", &["read", "write", "stream"]),
    ("oplist.rs", &["push", "clear", "extend"]),
    ("system.rs", &["run", "charge"]),
    // The sharded feed's record pull and the epoch-barrier merge it drives
    // run once per serviced access (DESIGN.md §11).
    ("shard.rs", &["next", "next_chunk"]),
    // The batched access path: the controller writes per-access op runs
    // through these on every batch entry (DESIGN.md §12).
    ("batch.rs", &["sinks", "commit", "push_outcome"]),
    // SoA frame metadata: every probe/victim scan and residency update in
    // the controller lands here (DESIGN.md §12).
    (
        "frametable.rs",
        &[
            "probe", "victim", "slot_of", "set_bit", "bump_nm", "bump_fm",
        ],
    ),
];

/// Setup/configuration modules where E1 applies: validation and
/// construction code that callers invoke before a run starts. A bad knob
/// must surface as a typed [`SilcFmError`], not a panic, so experiment
/// drivers (and the crash-safe journaled runner in particular) can report
/// it and carry on with the rest of a grid.
pub const SETUP_MODULES: &[&str] = &[
    "crates/dram/src/config.rs",
    "crates/core/src/params.rs",
    "crates/sim/src/experiment.rs",
];

/// Path prefixes (entire crates) in E1 scope. The fault plane is pure
/// setup-and-schedule code: nothing in it runs on the access hot path.
pub const SETUP_PREFIXES: &[&str] = &["crates/fault/src/"];

/// Whether E1 applies to this logical path.
fn setup_scope(path: &str) -> bool {
    SETUP_MODULES.contains(&path) || SETUP_PREFIXES.iter().any(|p| path.starts_with(p))
}

/// Rust keywords: identifiers that never name an indexable value, a called
/// function, or a path segment of interest.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while", "yield",
];

fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// Whether D1/D2 source rules apply to this logical path (forward slashes).
/// Tooling crates are exempt: the benchmark harness legitimately reads the
/// wall clock and the linter itself reads the filesystem.
fn determinism_scope(path: &str) -> bool {
    !path.starts_with("crates/bench/") && !path.starts_with("crates/lint/")
}

/// Whether D2 applies: the hermetic property harness (`silcfm-types::check`)
/// is additionally exempt by design (ISSUE 3), as the replay-seed printer
/// may grow environment hooks.
fn d2_scope(path: &str) -> bool {
    determinism_scope(path) && path != "crates/types/src/check.rs"
}

/// Whether this file is a designated hot-path module.
fn hot_module(path: &str) -> Option<&'static str> {
    let name = path.rsplit('/').next().unwrap_or(path);
    HOT_MODULES.iter().copied().find(|m| *m == name)
}

/// Runs every source-level rule over one lexed file, returning raw
/// (unsuppressed) findings. `path` is the workspace-relative path with
/// forward slashes.
pub fn lint_tokens(path: &str, lexed: &Lexed) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &lexed.tokens;
    let test_spans = test_spans(toks);
    let in_test = |line: usize| test_spans.iter().any(|s| s.contains(&line));

    if determinism_scope(path) {
        scan_paths(toks, |segments, line| {
            if has_pair(segments, "collections", &["HashMap", "HashSet"]) {
                findings.push(Finding {
                    rule: "D1",
                    path: path.to_string(),
                    line,
                    message: format!(
                        "default-hasher `{}`: SipHash is randomly keyed and its iteration \
                         order can leak into results",
                        segments.join("::")
                    ),
                    hint: "use `silcfm_types::FxHashMap` / `FxHashSet` (deterministic, faster)"
                        .to_string(),
                });
            }
            if d2_scope(path)
                && (has_pair(segments, "time", &["Instant", "SystemTime"])
                    || has_pair(segments, "env", &["var", "var_os", "vars"]))
            {
                findings.push(Finding {
                    rule: "D2",
                    path: path.to_string(),
                    line,
                    message: format!(
                        "environment-dependent API `{}`: wall-clock and env reads make runs \
                         unreproducible",
                        segments.join("::")
                    ),
                    hint: "derive behaviour from explicit config/seeds; timing belongs in \
                           crates/bench"
                        .to_string(),
                });
            }
        });
    }

    if let Some(module) = hot_module(path) {
        lint_panic_safety(path, toks, &mut findings, &in_test);
        lint_allocations(path, module, toks, &mut findings, &in_test);
    }

    if setup_scope(path) {
        lint_setup_fallibility(path, toks, &mut findings, &in_test);
    }

    findings
}

/// Collects `&'static str` keys passed as the first argument of a named
/// sink method, i.e. the `.sink("key", ...)` pattern. Only string literals
/// are collected: a key passed through a `const` binding is deliberately
/// invisible to the audit.
fn collect_sink_keys(lexed: &Lexed, sink: &str) -> Vec<(String, usize)> {
    let toks = &lexed.tokens;
    let mut keys = Vec::new();
    for i in 0..toks.len() {
        if punct(toks.get(i), '.') && ident(toks.get(i + 1), sink) && punct(toks.get(i + 2), '(') {
            if let Some(t) = toks.get(i + 3) {
                if t.kind == TokenKind::Str {
                    keys.push((t.text.clone(), t.line));
                }
            }
        }
    }
    keys
}

/// Collects `&'static str` stat keys passed to `SchemeStats::detail`, i.e.
/// the `.detail("key", ...)` sink. Returns `(key, line)` pairs.
pub fn collect_stat_keys(lexed: &Lexed) -> Vec<(String, usize)> {
    collect_sink_keys(lexed, "detail")
}

/// Collects time-series column keys passed to `SeriesSpec::series`, i.e.
/// the `.series("key")` sink. These share the S1 registry with stat keys
/// and must live in the reserved `obs.` namespace (see `lib.rs`).
pub fn collect_series_keys(lexed: &Lexed) -> Vec<(String, usize)> {
    collect_sink_keys(lexed, "series")
}

// ---- P1: panic safety ------------------------------------------------------

fn lint_panic_safety(
    path: &str,
    toks: &[Token],
    findings: &mut Vec<Finding>,
    in_test: &dyn Fn(usize) -> bool,
) {
    let hint = "restructure infallibly (`get`, `if let`, accessor with a documented \
                invariant) or annotate why the panic cannot fire";
    for i in 0..toks.len() {
        let t = &toks[i];
        if in_test(t.line) {
            continue;
        }
        // `.unwrap()` / `.expect(`
        if punct(Some(t), '.') {
            if let Some(name) = toks.get(i + 1) {
                if name.kind == TokenKind::Ident
                    && (name.text == "unwrap" || name.text == "expect")
                    && punct(toks.get(i + 2), '(')
                {
                    findings.push(Finding {
                        rule: "P1",
                        path: path.to_string(),
                        line: name.line,
                        message: format!(
                            "`.{}(` on the access hot path can abort a whole run",
                            name.text
                        ),
                        hint: hint.to_string(),
                    });
                }
            }
        }
        // `panic!`
        if t.kind == TokenKind::Ident && t.text == "panic" && punct(toks.get(i + 1), '!') {
            findings.push(Finding {
                rule: "P1",
                path: path.to_string(),
                line: t.line,
                message: "`panic!` on the access hot path".to_string(),
                hint: hint.to_string(),
            });
        }
        // Bare `[...]` indexing: a `[` whose previous token is a value
        // (identifier, `)` or `]`). Type positions, attributes, slice
        // patterns and macro brackets all have non-value predecessors.
        if punct(Some(t), '[') && i > 0 {
            let prev = &toks[i - 1];
            let value_before = match prev.kind {
                TokenKind::Ident => !is_keyword(&prev.text),
                TokenKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if value_before {
                findings.push(Finding {
                    rule: "P1",
                    path: path.to_string(),
                    line: t.line,
                    message: "bare `[...]` indexing on the access hot path panics when out \
                              of bounds"
                        .to_string(),
                    hint: hint.to_string(),
                });
            }
        }
    }
}

// ---- E1: setup fallibility -------------------------------------------------

fn lint_setup_fallibility(
    path: &str,
    toks: &[Token],
    findings: &mut Vec<Finding>,
    in_test: &dyn Fn(usize) -> bool,
) {
    let hint = "return `Result<_, SilcFmError>` so experiment drivers can report the bad \
                knob and continue the rest of the grid";
    for i in 0..toks.len() {
        let t = &toks[i];
        if in_test(t.line) {
            continue;
        }
        if punct(Some(t), '.') {
            if let Some(name) = toks.get(i + 1) {
                if name.kind == TokenKind::Ident
                    && (name.text == "unwrap" || name.text == "expect")
                    && punct(toks.get(i + 2), '(')
                {
                    findings.push(Finding {
                        rule: "E1",
                        path: path.to_string(),
                        line: name.line,
                        message: format!(
                            "`.{}(` in setup code turns a bad configuration into a crash",
                            name.text
                        ),
                        hint: hint.to_string(),
                    });
                }
            }
        }
        if t.kind == TokenKind::Ident && t.text == "panic" && punct(toks.get(i + 1), '!') {
            findings.push(Finding {
                rule: "E1",
                path: path.to_string(),
                line: t.line,
                message: "`panic!` in setup code turns a bad configuration into a crash"
                    .to_string(),
                hint: hint.to_string(),
            });
        }
    }
}

// ---- A1: allocation discipline --------------------------------------------

fn lint_allocations(
    path: &str,
    module: &str,
    toks: &[Token],
    findings: &mut Vec<Finding>,
    in_test: &dyn Fn(usize) -> bool,
) {
    let seeds: &[&str] = HOT_SEEDS
        .iter()
        .find(|(m, _)| *m == module)
        .map(|(_, s)| *s)
        .unwrap_or(&["access"]);
    let fns = extract_fns(toks);

    // File-local call graph: fn name -> names it mentions as calls.
    // `Other::name(` is a *foreign* associated call, not a mention of the
    // local `name` — only `Self::`/`self.`-qualified and bare calls count.
    let mut calls: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for f in &fns {
        let entry = calls.entry(f.name.as_str()).or_default();
        for j in f.body.clone() {
            let t = &toks[j];
            if t.kind == TokenKind::Ident && !is_keyword(&t.text) && punct(toks.get(j + 1), '(') {
                let qualified =
                    j >= 2 && punct(toks.get(j - 1), ':') && punct(toks.get(j - 2), ':');
                if qualified && !(j >= 3 && ident(toks.get(j - 3), "Self")) {
                    continue;
                }
                entry.push(t.text.as_str());
            }
        }
    }

    // Closure from the seeds.
    let mut hot: Vec<&str> = Vec::new();
    let mut queue: Vec<&str> = seeds.to_vec();
    while let Some(name) = queue.pop() {
        if hot.contains(&name) {
            continue;
        }
        hot.push(name);
        if let Some(mentions) = calls.get(name) {
            for m in mentions {
                if calls.contains_key(m) && !hot.contains(m) {
                    queue.push(m);
                }
            }
        }
    }

    let hint = "keep per-access work allocation-free: reuse caller-owned buffers \
                (see the outcome-reuse protocol) or hoist the allocation to setup";
    for f in &fns {
        if !hot.contains(&f.name.as_str()) || in_test(f.line) {
            continue;
        }
        for j in f.body.clone() {
            let t = &toks[j];
            if in_test(t.line) {
                continue;
            }
            let mut hit: Option<String> = None;
            // `Vec::new` / `Box::new`
            if t.kind == TokenKind::Ident
                && (t.text == "Vec" || t.text == "Box")
                && punct(toks.get(j + 1), ':')
                && punct(toks.get(j + 2), ':')
                && ident(toks.get(j + 3), "new")
            {
                hit = Some(format!("{}::new", t.text));
            }
            // `vec!` / `format!`
            if t.kind == TokenKind::Ident
                && (t.text == "vec" || t.text == "format")
                && punct(toks.get(j + 1), '!')
            {
                hit = Some(format!("{}!", t.text));
            }
            // `.to_vec(`
            if punct(Some(t), '.')
                && ident(toks.get(j + 1), "to_vec")
                && punct(toks.get(j + 2), '(')
            {
                hit = Some(".to_vec()".to_string());
            }
            if let Some(what) = hit {
                findings.push(Finding {
                    rule: "A1",
                    path: path.to_string(),
                    line: t.line,
                    message: format!(
                        "`{what}` inside `{}`, which is reachable from the access hot path \
                         (seeds: {})",
                        f.name,
                        seeds.join(", ")
                    ),
                    hint: hint.to_string(),
                });
            }
        }
    }
}

// ---- token-pattern helpers -------------------------------------------------

fn punct(t: Option<&Token>, c: char) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
}

fn ident(t: Option<&Token>, name: &str) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
}

/// Whether `segments` contains `qualifier` immediately followed by one of
/// `leaves`.
fn has_pair(segments: &[String], qualifier: &str, leaves: &[&str]) -> bool {
    segments
        .windows(2)
        .any(|w| w[0] == qualifier && leaves.iter().any(|l| w[1] == *l))
}

/// Scans `::`-joined paths, including grouped `use` trees
/// (`use std::collections::{HashMap, HashSet}`), and calls `f` with the
/// full segment list and the leaf's line for every path leaf.
fn scan_paths(toks: &[Token], mut f: impl FnMut(&[String], usize)) {
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
            // Only start a path at a non-qualified position: skip idents
            // preceded by `::` (mid-path) or `.` (field/method).
            let qualified = i >= 2 && punct(toks.get(i - 1), ':') && punct(toks.get(i - 2), ':');
            let after_dot = i >= 1 && punct(toks.get(i - 1), '.');
            if !qualified && !after_dot {
                let mut segments = vec![t.text.clone()];
                i = walk_path(toks, i + 1, &mut segments, &mut f);
                if segments.len() > 1 {
                    f(
                        &segments,
                        toks[i.saturating_sub(1).min(toks.len() - 1)].line,
                    );
                }
                continue;
            }
        }
        i += 1;
    }
}

/// Continues a path after its first segment; returns the index just past
/// the path. Recurses into `{...}` use-groups, reporting each leaf.
fn walk_path(
    toks: &[Token],
    mut i: usize,
    segments: &mut Vec<String>,
    f: &mut impl FnMut(&[String], usize),
) -> usize {
    while punct(toks.get(i), ':') && punct(toks.get(i + 1), ':') {
        match toks.get(i + 2) {
            Some(t) if t.kind == TokenKind::Ident && !is_keyword(&t.text) => {
                segments.push(t.text.clone());
                i += 3;
            }
            Some(t) if t.kind == TokenKind::Punct && t.text == "{" => {
                // Use-group: each element extends the current prefix.
                i += 3;
                let mut depth = 1usize;
                while i < toks.len() && depth > 0 {
                    let t = &toks[i];
                    if t.kind == TokenKind::Punct {
                        match t.text.as_str() {
                            "{" => depth += 1,
                            "}" => depth -= 1,
                            _ => {}
                        }
                        i += 1;
                        continue;
                    }
                    if depth == 1 && t.kind == TokenKind::Ident && !is_keyword(&t.text) {
                        let mut sub = segments.clone();
                        sub.push(t.text.clone());
                        let line = t.line;
                        i = walk_path(toks, i + 1, &mut sub, f);
                        f(&sub, line);
                        continue;
                    }
                    i += 1;
                }
                return i;
            }
            _ => break,
        }
    }
    i
}

/// A function item found in the token stream.
struct FnItem {
    name: String,
    /// Token-index range of the body (between the braces, exclusive).
    body: Range<usize>,
    /// Line of the `fn` keyword.
    line: usize,
}

/// Extracts every `fn name(...) { ... }` item (free functions, methods and
/// nested functions alike).
fn extract_fns(toks: &[Token]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if ident(toks.get(i), "fn") {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokenKind::Ident {
                    let line = toks[i].line;
                    // Find the body's `{` at paren depth 0; a `;` first
                    // means a bodiless declaration.
                    let mut j = i + 2;
                    let mut paren = 0i32;
                    let mut body = None;
                    while let Some(t) = toks.get(j) {
                        if t.kind == TokenKind::Punct {
                            match t.text.as_str() {
                                "(" => paren += 1,
                                ")" => paren -= 1,
                                ";" if paren == 0 => break,
                                "{" if paren == 0 => {
                                    body = Some(j);
                                    break;
                                }
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                    if let Some(open) = body {
                        let close = matching_brace(toks, open);
                        fns.push(FnItem {
                            name: name_tok.text.clone(),
                            body: open + 1..close,
                            line,
                        });
                        // Continue scanning *inside* the body too (nested
                        // fns); the outer loop advances one token at a time.
                    }
                }
            }
        }
        i += 1;
    }
    fns
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Line ranges covered by `#[cfg(test)]` items (conventionally
/// `mod tests { ... }`): P1/A1 are hot-path contracts for shipped code and
/// do not apply to tests.
fn test_spans(toks: &[Token]) -> Vec<Range<usize>> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = punct(toks.get(i), '#')
            && punct(toks.get(i + 1), '[')
            && ident(toks.get(i + 2), "cfg")
            && punct(toks.get(i + 3), '(')
            && ident(toks.get(i + 4), "test")
            && punct(toks.get(i + 5), ')')
            && punct(toks.get(i + 6), ']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then span the item's braces.
        let mut j = i + 7;
        while punct(toks.get(j), '#') && punct(toks.get(j + 1), '[') {
            let mut depth = 0i32;
            while let Some(t) = toks.get(j) {
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            j += 1;
        }
        let mut paren = 0i32;
        while let Some(t) = toks.get(j) {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    ";" if paren == 0 => break,
                    "{" if paren == 0 => {
                        let close = matching_brace(toks, j);
                        spans.push(toks[j].line..toks[close].line + 1);
                        i = close;
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rules_of(path: &str, src: &str) -> Vec<(&'static str, usize)> {
        lint_tokens(path, &lex(src))
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn d1_fires_on_plain_and_grouped_imports() {
        let hits = rules_of(
            "crates/core/src/lib.rs",
            "use std::collections::HashMap;\nuse std::collections::{BTreeMap, HashSet};\n",
        );
        assert_eq!(hits, vec![("D1", 1), ("D1", 2)]);
    }

    #[test]
    fn d1_fires_on_inline_paths_and_spares_fx() {
        let hits = rules_of(
            "crates/sim/src/lib.rs",
            "fn f() { let s = std::collections::HashSet::<u64>::new(); }\n\
             fn g() { let m = silcfm_types::FxHashMap::<u64, u64>::default(); }\n",
        );
        assert_eq!(hits, vec![("D1", 1)]);
    }

    #[test]
    fn d2_fires_on_time_and_env() {
        let hits = rules_of(
            "crates/sim/src/lib.rs",
            "use std::time::Instant;\nfn f() { let _ = std::env::var(\"X\"); }\n",
        );
        assert_eq!(hits, vec![("D2", 1), ("D2", 2)]);
    }

    #[test]
    fn d2_spares_bench_and_check() {
        assert!(rules_of("crates/bench/src/timing.rs", "use std::time::Instant;").is_empty());
        assert!(rules_of("crates/types/src/check.rs", "use std::time::Instant;").is_empty());
        // ... but check.rs is NOT exempt from D1.
        assert_eq!(
            rules_of(
                "crates/types/src/check.rs",
                "use std::collections::HashSet;"
            ),
            vec![("D1", 1)]
        );
    }

    #[test]
    fn p1_fires_only_in_hot_modules() {
        let src = "fn f(v: &[u32]) -> u32 { v.first().unwrap() + v[0] }";
        assert_eq!(
            rules_of("crates/core/src/controller.rs", src),
            vec![("P1", 1), ("P1", 1)]
        );
        assert!(rules_of("crates/core/src/predictor.rs", src).is_empty());
    }

    #[test]
    fn p1_spares_types_attrs_and_patterns() {
        let src = "struct S { a: [u8; 4] }\n\
                   #[derive(Clone)]\n\
                   struct T;\n\
                   fn f() { let [a, b] = [1, 2]; let _ = (a, b); }\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(rules_of("crates/core/src/controller.rs", src).is_empty());
    }

    #[test]
    fn p1_skips_test_modules() {
        let src = "fn hot(v: &[u32]) -> u32 { v.len() as u32 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { let v = vec![1]; assert_eq!(v[0], v.first().copied().unwrap()); }\n\
                   }\n";
        assert!(rules_of("crates/core/src/controller.rs", src).is_empty());
    }

    #[test]
    fn a1_uses_reachability() {
        let src = "fn access(&mut self) { self.helper(); }\n\
                   fn helper(&mut self) { let v = vec![1, 2]; let _ = v; }\n\
                   fn cold_setup(&mut self) { let v = Vec::new(); let _ = v; }\n";
        let hits = rules_of("crates/core/src/controller.rs", src);
        // helper is reachable from access; cold_setup is not.
        assert_eq!(
            hits.iter().filter(|(r, _)| *r == "A1").collect::<Vec<_>>(),
            vec![&("A1", 2)]
        );
    }

    #[test]
    fn a1_ignores_foreign_associated_calls() {
        // `PhysAddr::new(` inside a hot fn must not mark the *local*
        // constructor `new` as hot; `Self::grow(` must.
        let src = "fn access(&mut self) { let a = PhysAddr::new(0); Self::grow(a); }\n\
                   fn new() -> Vec<u32> { Vec::new() }\n\
                   fn grow(_a: u64) { let v = vec![1]; let _ = v; }\n";
        let hits = rules_of("crates/core/src/controller.rs", src);
        let a1: Vec<usize> = hits
            .iter()
            .filter(|(r, _)| *r == "A1")
            .map(|(_, l)| *l)
            .collect();
        assert_eq!(a1, vec![3]);
    }

    #[test]
    fn a1_catches_every_banned_form() {
        let src = "fn access(&mut self) {\n\
                       let a = Vec::new();\n\
                       let b = vec![0u8; 4];\n\
                       let c = Box::new(1);\n\
                       let d = b.to_vec();\n\
                       let e = format!(\"{}\", 1);\n\
                       let _ = (a, b, c, d, e);\n\
                   }\n";
        let hits = rules_of("crates/dram/src/model.rs", src);
        // model.rs seeds are read/write/stream; `access` is not hot there.
        assert!(hits.iter().all(|(r, _)| *r != "A1"));
        let hits = rules_of("crates/core/src/controller.rs", src);
        let a1: Vec<usize> = hits
            .iter()
            .filter(|(r, _)| *r == "A1")
            .map(|(_, l)| *l)
            .collect();
        assert_eq!(a1, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn e1_fires_in_setup_modules_and_crates() {
        let src = "fn build(v: Option<u32>) -> u32 { v.unwrap() }\n\
                   fn check(ok: bool) { if !ok { panic!(\"bad\"); } }\n";
        assert_eq!(
            rules_of("crates/dram/src/config.rs", src),
            vec![("E1", 1), ("E1", 2)]
        );
        assert_eq!(
            rules_of("crates/fault/src/schedule.rs", src),
            vec![("E1", 1), ("E1", 2)]
        );
        // Ordinary simulator code is out of E1 scope.
        assert!(rules_of("crates/sim/src/runner.rs", src).is_empty());
    }

    #[test]
    fn e1_skips_test_modules() {
        let src = "fn build(v: Option<u32>) -> u32 { v.unwrap_or(0) }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { assert_eq!(super::build(Some(1)), Some(1).unwrap()); }\n\
                   }\n";
        assert!(rules_of("crates/core/src/params.rs", src).is_empty());
    }

    #[test]
    fn stat_keys_are_collected_across_lines() {
        let keys = collect_stat_keys(&lex(
            "fn stats(&self) { s.detail(\"locks\", 1.0); s.detail(\n    \"swaps\", 2.0); }",
        ));
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].0, "locks");
        assert_eq!(keys[1].0, "swaps");
        assert_eq!(keys[1].1, 2);
    }
}
