//! The workspace symbol table: every type, trait and function in every
//! scanned file, keyed by module path, with enough cross-referencing for
//! the call-graph builder ([`crate::callgraph`]) to resolve method calls.
//!
//! Module paths are derived from file paths (`crates/<dir>/src/foo.rs` →
//! `<crate_mod>::foo`, with the crate's package name mapped `-`→`_`), and
//! extended through inline `mod` items. Resolution of a name in a file
//! tries, in order: the defining module itself, the file's `use` imports
//! (aliases honored, re-exports resolved by unique name within the target
//! crate), then a unique match across the workspace. Ambiguity resolves to
//! nothing — the analyzer drops what it cannot prove (DESIGN.md §13).

use std::collections::BTreeMap;
use std::ops::Range;

use crate::lexer::{lex, Lexed};
use crate::parse::{parse, Field, FnSig, Item, ItemKind, ItemTree, UseImport};

/// Index of a [`TypeSym`] in [`Workspace::types`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TypeId(pub usize);

/// Index of a [`TraitSym`] in [`Workspace::traits`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraitId(pub usize);

/// Index of a [`FnSym`] in [`Workspace::fns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnId(pub usize);

/// Who owns a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Owner {
    /// A free function (module-level or nested in another fn).
    Free,
    /// An inherent or trait-impl method of a type.
    Type(TypeId),
    /// A default method in a trait body.
    TraitDefault(TraitId),
}

/// A struct/enum/union/alias (or a stub for a foreign type that the
/// workspace writes an impl for).
#[derive(Debug)]
pub struct TypeSym {
    pub name: String,
    pub module: Vec<String>,
    pub file: usize,
    /// Named fields with base type idents (structs only).
    pub fields: Vec<Field>,
    /// `(generic param, first bound)` from the type declaration.
    pub generics: Vec<(String, String)>,
    /// Method name → every fn with that name (inherent + trait impls).
    pub methods: BTreeMap<String, Vec<FnId>>,
    /// Traits this type has (resolvable) impls for.
    pub traits: Vec<TraitId>,
}

/// A trait declaration.
#[derive(Debug)]
pub struct TraitSym {
    pub name: String,
    pub module: Vec<String>,
    pub file: usize,
    /// Method name → the trait-body default fn, or `None` if required-only.
    pub methods: BTreeMap<String, Option<FnId>>,
    /// Types with (resolvable) impls of this trait.
    pub impls: Vec<TypeId>,
}

/// One function: free fn, method, or trait default.
#[derive(Debug)]
pub struct FnSym {
    pub name: String,
    pub file: usize,
    pub line: usize,
    /// Token range of the body (absent for required trait methods).
    pub body: Option<Range<usize>>,
    /// Signature with impl-level generics merged in.
    pub sig: FnSig,
    pub owner: Owner,
    /// Gated by `#[cfg(test)]` (directly or via an enclosing item).
    pub cfg_test: bool,
    pub module: Vec<String>,
    /// For methods from a trait impl: the impl's *textual* trait name
    /// (`impl MemoryScheme for X` → `Some("MemoryScheme")`). Seed matching
    /// uses the text so foreign or fixture-local traits still seed.
    pub impl_trait: Option<String>,
}

/// One scanned file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub lexed: Lexed,
    pub tree: ItemTree,
    /// Module path of the file root.
    pub module: Vec<String>,
    /// Flattened `use` imports (file-wide; inline-mod imports included).
    pub imports: Vec<UseImport>,
    /// Lives under `tests/`, `examples/` or `benches/` — an integration
    /// test root, exempt from hot-path sinks like `#[cfg(test)]` code.
    pub is_test_file: bool,
}

/// The whole workspace, symbolized.
#[derive(Debug, Default)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnSym>,
    pub types: Vec<TypeSym>,
    pub traits: Vec<TraitSym>,
    type_by_name: BTreeMap<String, Vec<TypeId>>,
    trait_by_name: BTreeMap<String, Vec<TraitId>>,
    free_fn_by_name: BTreeMap<String, Vec<FnId>>,
    /// Every *method* (non-free fn) by bare name, for last-resort receiver
    /// resolution.
    method_by_name: BTreeMap<String, Vec<FnId>>,
}

/// A deferred impl block: methods attach to their type after every type in
/// the workspace is known.
struct PendingImpl {
    file: usize,
    module: Vec<String>,
    self_ty: String,
    trait_name: Option<String>,
    generics: Vec<(String, String)>,
    cfg_test: bool,
    methods: Vec<Item>,
}

impl Workspace {
    /// Builds the table from `(logical path, source)` pairs. `crate_names`
    /// maps a `crates/<dir>` directory name to its package name (hyphens
    /// allowed; they are mapped to underscores here); unmapped directories
    /// fall back to `silcfm_<dir>`, the workspace's naming convention.
    pub fn build(sources: &[(String, String)], crate_names: &BTreeMap<String, String>) -> Self {
        let mut ws = Workspace::default();
        let mut pending: Vec<PendingImpl> = Vec::new();

        for (path, source) in sources {
            let lexed = lex(source);
            let tree = parse(&lexed);
            let module = module_path(path, crate_names);
            let file_idx = ws.files.len();
            let is_test_file = {
                let segs: Vec<&str> = path.split('/').collect();
                segs.contains(&"tests") || segs.contains(&"examples") || segs.contains(&"benches")
            };
            let mut imports = Vec::new();
            collect_imports(&tree.items, &mut imports);
            ws.register_items(&tree.items, file_idx, module.clone(), false, &mut pending);
            ws.files.push(SourceFile {
                path: path.clone(),
                lexed,
                tree,
                module,
                imports,
                is_test_file,
            });
        }

        ws.attach_impls(pending);
        ws.index();
        ws
    }

    /// Registers declared items (types, traits, free fns); impls are
    /// collected for the second pass.
    fn register_items(
        &mut self,
        items: &[Item],
        file: usize,
        module: Vec<String>,
        in_test: bool,
        pending: &mut Vec<PendingImpl>,
    ) {
        for item in items {
            let cfg_test = in_test || item.cfg_test;
            match &item.kind {
                ItemKind::Struct { fields, generics } => {
                    self.types.push(TypeSym {
                        name: item.name.clone(),
                        module: module.clone(),
                        file,
                        fields: fields.clone(),
                        generics: generics.clone(),
                        methods: BTreeMap::new(),
                        traits: Vec::new(),
                    });
                }
                ItemKind::Enum | ItemKind::Union | ItemKind::TypeAlias => {
                    self.types.push(TypeSym {
                        name: item.name.clone(),
                        module: module.clone(),
                        file,
                        fields: Vec::new(),
                        generics: Vec::new(),
                        methods: BTreeMap::new(),
                        traits: Vec::new(),
                    });
                }
                ItemKind::Trait => {
                    let tid = TraitId(self.traits.len());
                    let mut methods = BTreeMap::new();
                    for child in &item.children {
                        if let ItemKind::Fn { sig, body } = &child.kind {
                            let default = body.clone().map(|b| {
                                self.push_fn(
                                    child,
                                    sig.clone(),
                                    Some(b),
                                    file,
                                    module.clone(),
                                    Owner::TraitDefault(tid),
                                    cfg_test || child.cfg_test,
                                )
                            });
                            methods.insert(child.name.clone(), default);
                        }
                    }
                    self.traits.push(TraitSym {
                        name: item.name.clone(),
                        module: module.clone(),
                        file,
                        methods,
                        impls: Vec::new(),
                    });
                }
                ItemKind::Fn { sig, body } => {
                    self.push_fn(
                        item,
                        sig.clone(),
                        body.clone(),
                        file,
                        module.clone(),
                        Owner::Free,
                        cfg_test,
                    );
                    // Items nested inside the body (nested fns) register as
                    // free fns of the same module.
                    self.register_items(&item.children, file, module.clone(), cfg_test, pending);
                }
                ItemKind::Mod { inline: true } => {
                    let mut sub = module.clone();
                    sub.push(item.name.clone());
                    self.register_items(&item.children, file, sub, cfg_test, pending);
                }
                ItemKind::Impl {
                    self_ty,
                    trait_name,
                    generics,
                } => {
                    pending.push(PendingImpl {
                        file,
                        module: module.clone(),
                        self_ty: self_ty.clone(),
                        trait_name: trait_name.clone(),
                        generics: generics.clone(),
                        cfg_test,
                        methods: item.children.clone(),
                    });
                }
                _ => {}
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // one call site; mirrors the FnSym fields
    fn push_fn(
        &mut self,
        item: &Item,
        sig: FnSig,
        body: Option<Range<usize>>,
        file: usize,
        module: Vec<String>,
        owner: Owner,
        cfg_test: bool,
    ) -> FnId {
        let id = FnId(self.fns.len());
        self.fns.push(FnSym {
            name: item.name.clone(),
            file,
            line: item.line,
            body,
            sig,
            owner,
            cfg_test,
            module,
            impl_trait: None,
        });
        id
    }

    /// Second pass: resolve each impl's self type (stubbing foreign types)
    /// and attach its methods, linking trait impls both ways.
    fn attach_impls(&mut self, pending: Vec<PendingImpl>) {
        // Name → candidate ids, for pre-index resolution. Owned keys: the
        // loop below pushes stubs into `self.types` while the map is live.
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, t) in self.types.iter().enumerate() {
            by_name.entry(t.name.clone()).or_default().push(i);
        }
        let mut trait_ids: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, t) in self.traits.iter().enumerate() {
            trait_ids.entry(t.name.clone()).or_default().push(i);
        }
        // Resolve self types first (may push stubs, so two passes).
        let mut resolved: Vec<(TypeId, Option<TraitId>)> = Vec::new();
        for imp in &pending {
            let tid = match by_name.get(imp.self_ty.as_str()) {
                Some(ids) if ids.len() == 1 => TypeId(ids[0]),
                Some(ids) => {
                    // Prefer a same-module or same-crate candidate.
                    let same = ids.iter().find(|&&i| self.types[i].module == imp.module);
                    let crate_mod = imp.module.first();
                    let same_crate = ids
                        .iter()
                        .find(|&&i| self.types[i].module.first() == crate_mod);
                    TypeId(*same.or(same_crate).unwrap_or(&ids[0]))
                }
                None => {
                    let id = TypeId(self.types.len());
                    self.types.push(TypeSym {
                        name: imp.self_ty.clone(),
                        module: imp.module.clone(),
                        file: imp.file,
                        fields: Vec::new(),
                        generics: Vec::new(),
                        methods: BTreeMap::new(),
                        traits: Vec::new(),
                    });
                    // Later impls on the same foreign type share the stub.
                    by_name.entry(imp.self_ty.clone()).or_default().push(id.0);
                    id
                }
            };
            let trait_id = imp.trait_name.as_deref().and_then(|n| {
                trait_ids.get(n).and_then(|ids| {
                    if ids.len() == 1 {
                        Some(TraitId(ids[0]))
                    } else {
                        None
                    }
                })
            });
            resolved.push((tid, trait_id));
        }
        for (imp, (tid, trait_id)) in pending.into_iter().zip(resolved) {
            if let Some(trid) = trait_id {
                if !self.traits[trid.0].impls.contains(&tid) {
                    self.traits[trid.0].impls.push(tid);
                }
                if !self.types[tid.0].traits.contains(&trid) {
                    self.types[tid.0].traits.push(trid);
                }
            }
            for child in &imp.methods {
                if let ItemKind::Fn { sig, body } = &child.kind {
                    let mut sig = sig.clone();
                    // Impl-level generics participate in bound lookup.
                    for g in &imp.generics {
                        if !sig.generics.iter().any(|(p, _)| p == &g.0) {
                            sig.generics.push(g.clone());
                        }
                    }
                    let id = self.push_fn(
                        child,
                        sig,
                        body.clone(),
                        imp.file,
                        imp.module.clone(),
                        Owner::Type(tid),
                        imp.cfg_test || child.cfg_test,
                    );
                    self.fns[id.0].impl_trait = imp.trait_name.clone();
                    self.types[tid.0]
                        .methods
                        .entry(child.name.clone())
                        .or_default()
                        .push(id);
                }
            }
        }
    }

    /// Builds the by-name lookup indices.
    fn index(&mut self) {
        for (i, t) in self.types.iter().enumerate() {
            self.type_by_name
                .entry(t.name.clone())
                .or_default()
                .push(TypeId(i));
        }
        for (i, t) in self.traits.iter().enumerate() {
            self.trait_by_name
                .entry(t.name.clone())
                .or_default()
                .push(TraitId(i));
        }
        for (i, f) in self.fns.iter().enumerate() {
            match f.owner {
                Owner::Free => self
                    .free_fn_by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push(FnId(i)),
                _ => self
                    .method_by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push(FnId(i)),
            }
        }
    }

    /// Display label for a fn: `Type::name` / `Trait::name` / `name`.
    pub fn qualified_name(&self, id: FnId) -> String {
        let f = &self.fns[id.0];
        match f.owner {
            Owner::Free => f.name.clone(),
            Owner::Type(t) => format!("{}::{}", self.types[t.0].name, f.name),
            Owner::TraitDefault(t) => format!("{}::{}", self.traits[t.0].name, f.name),
        }
    }

    /// `path:line` anchor of a fn.
    pub fn location(&self, id: FnId) -> String {
        let f = &self.fns[id.0];
        format!("{}:{}", self.files[f.file].path, f.line)
    }

    /// Resolves a bare type name seen in `file`: defining module → imports
    /// → unique workspace match.
    pub fn resolve_type_name(&self, file: usize, name: &str) -> Option<TypeId> {
        self.resolve_name(file, name, &self.type_by_name, |id| {
            (
                self.types[id.0].module.clone(),
                self.types[id.0].name.clone(),
            )
        })
    }

    /// Resolves a bare trait name seen in `file`.
    pub fn resolve_trait_name(&self, file: usize, name: &str) -> Option<TraitId> {
        self.resolve_name(file, name, &self.trait_by_name, |id| {
            (
                self.traits[id.0].module.clone(),
                self.traits[id.0].name.clone(),
            )
        })
    }

    /// Resolves a bare free-fn name seen in `file`.
    pub fn resolve_free_fn(&self, file: usize, name: &str) -> Option<FnId> {
        self.resolve_name(file, name, &self.free_fn_by_name, |id| {
            (self.fns[id.0].module.clone(), self.fns[id.0].name.clone())
        })
    }

    /// Every method (non-free fn) with this bare name, workspace-wide.
    pub fn methods_named(&self, name: &str) -> &[FnId] {
        self.method_by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Generic resolver over one of the by-name maps; `info` yields a
    /// candidate's `(module, name)` for module-match scoring.
    fn resolve_name<Id: Copy>(
        &self,
        file: usize,
        name: &str,
        map: &BTreeMap<String, Vec<Id>>,
        info: impl Fn(Id) -> (Vec<String>, String),
    ) -> Option<Id> {
        let sf = self.files.get(file)?;
        // 1. Defined in this file's module (or the file's crate root).
        if let Some(ids) = map.get(name) {
            if let Some(&id) = ids.iter().find(|&&id| info(id).0 == sf.module) {
                return Some(id);
            }
        }
        // 2. Imported under this name (alias) — resolve the import's target.
        for imp in &sf.imports {
            if imp.alias == name {
                let target = imp.path.last().cloned().unwrap_or_default();
                let module = self.normalize_path(&sf.module, &imp.path);
                if let Some(ids) = map.get(&target) {
                    // Exact module match first.
                    if let Some(&id) = ids.iter().find(|&&id| {
                        let (m, _) = info(id);
                        Some(m.as_slice()) == module.as_deref()
                    }) {
                        return Some(id);
                    }
                    // Re-export: unique within the path's crate.
                    if let Some(root) = module.as_ref().and_then(|m| m.first().cloned()) {
                        let in_crate: Vec<Id> = ids
                            .iter()
                            .copied()
                            .filter(|&id| info(id).0.first() == Some(&root))
                            .collect();
                        if in_crate.len() == 1 {
                            return Some(in_crate[0]);
                        }
                    }
                }
            }
        }
        // 3. Unique across the workspace.
        match map.get(name) {
            Some(ids) if ids.len() == 1 => Some(ids[0]),
            _ => None,
        }
    }

    /// Normalizes a use-path to the module path containing its leaf:
    /// `crate::x::Y` → `[crate_root, x]`; returns `None` when the head is
    /// not a module anchor we understand.
    fn normalize_path(&self, ctx_module: &[String], path: &[String]) -> Option<Vec<String>> {
        if path.len() < 2 {
            return None;
        }
        let mut out: Vec<String> = Vec::new();
        let mut segs = path[..path.len() - 1].iter();
        match path[0].as_str() {
            "crate" => {
                out.push(ctx_module.first().cloned()?);
                segs.next();
            }
            "super" => {
                out.extend_from_slice(ctx_module);
                while segs.clone().next().map(String::as_str) == Some("super") {
                    out.pop();
                    segs.next();
                }
            }
            "self" => {
                out.extend_from_slice(ctx_module);
                segs.next();
            }
            "std" | "core" | "alloc" => return None,
            _ => {}
        }
        out.extend(segs.cloned());
        Some(out)
    }
}

/// Collects every `use` leaf in the item forest (inline mods included).
fn collect_imports(items: &[Item], out: &mut Vec<UseImport>) {
    for item in items {
        if let ItemKind::Use { imports } = &item.kind {
            out.extend(imports.iter().cloned());
        }
        collect_imports(&item.children, out);
    }
}

/// Derives a file's root module path from its workspace-relative path.
///
/// `crates/<dir>/src/lib.rs` → `[pkg]`; `…/src/a/b.rs` → `[pkg, a, b]`;
/// `mod.rs` folds into its directory. Binary, test, example and bench
/// roots become synthetic top-level modules (`[pkg__bin_x]` style) — they
/// are crate roots of their own, and the synthetic name keeps them from
/// colliding with library modules.
pub fn module_path(path: &str, crate_names: &BTreeMap<String, String>) -> Vec<String> {
    let segs: Vec<&str> = path.split('/').collect();
    let (pkg, rest): (String, &[&str]) = if segs.len() >= 3 && segs[0] == "crates" {
        let dir = segs[1];
        let name = crate_names
            .get(dir)
            .cloned()
            .unwrap_or_else(|| format!("silcfm_{dir}"));
        (name.replace('-', "_"), &segs[2..])
    } else {
        ("workspace_root".to_string(), &segs[..])
    };
    let stem = |s: &str| s.trim_end_matches(".rs").to_string();
    match rest {
        ["src", "lib.rs"] => vec![pkg],
        ["src", "main.rs"] => vec![format!("{pkg}__bin")],
        ["src", "bin", name] => vec![format!("{pkg}__bin_{}", stem(name))],
        ["src", tail @ ..] => {
            let mut out = vec![pkg];
            for (i, seg) in tail.iter().enumerate() {
                if i + 1 == tail.len() {
                    if *seg != "mod.rs" {
                        out.push(stem(seg));
                    }
                } else {
                    out.push((*seg).to_string());
                }
            }
            out
        }
        [kind @ ("tests" | "examples" | "benches"), tail @ ..] => {
            let leaf = tail.last().map_or(String::new(), |s| stem(s));
            vec![format!("{pkg}__{kind}_{leaf}")]
        }
        _ => vec![pkg],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(sources: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::build(&owned, &BTreeMap::new())
    }

    #[test]
    fn module_paths_follow_file_layout() {
        let names = BTreeMap::from([("types".to_string(), "silcfm-types".to_string())]);
        assert_eq!(
            module_path("crates/types/src/lib.rs", &names),
            ["silcfm_types"]
        );
        assert_eq!(
            module_path("crates/types/src/scheme.rs", &names),
            ["silcfm_types", "scheme"]
        );
        assert_eq!(
            module_path("crates/core/src/sub/mod.rs", &names),
            ["silcfm_core", "sub"]
        );
        assert_eq!(
            module_path("crates/core/src/sub/deep.rs", &names),
            ["silcfm_core", "sub", "deep"]
        );
        assert_eq!(
            module_path("crates/sim/tests/golden.rs", &names),
            ["silcfm_sim__tests_golden"]
        );
    }

    #[test]
    fn types_traits_and_methods_register() {
        let ws = ws(&[(
            "crates/core/src/controller.rs",
            "pub struct SilcFm { frames: FrameTable }\n\
             pub struct FrameTable;\n\
             impl FrameTable { pub fn probe(&self) -> u64 { 0 } }\n\
             pub trait Scheme { fn access(&mut self); fn warm(&mut self) { self.access(); } }\n\
             impl Scheme for SilcFm { fn access(&mut self) { self.frames.probe(); } }\n",
        )]);
        assert_eq!(ws.types.len(), 2);
        assert_eq!(ws.traits.len(), 1);
        let silcfm = &ws.types[0];
        assert_eq!(silcfm.name, "SilcFm");
        assert!(silcfm.methods.contains_key("access"));
        assert_eq!(silcfm.traits.len(), 1);
        let tr = &ws.traits[0];
        assert_eq!(tr.impls.len(), 1);
        assert!(tr.methods["warm"].is_some(), "default method registered");
        assert!(
            tr.methods["access"].is_none(),
            "required method has no body"
        );
    }

    #[test]
    fn resolution_prefers_module_then_imports_then_unique() {
        let ws = ws(&[
            (
                "crates/types/src/scheme.rs",
                "pub struct Outcome; pub struct Access;",
            ),
            (
                "crates/core/src/controller.rs",
                "use silcfm_types::scheme::Outcome;\nstruct Access;\nstruct Local;\n",
            ),
        ]);
        // Same-module beats the import-visible foreign type.
        let access = ws.resolve_type_name(1, "Access").expect("Access");
        assert_eq!(ws.types[access.0].module, ["silcfm_core", "controller"]);
        // Imported name resolves across files.
        let outcome = ws.resolve_type_name(1, "Outcome").expect("Outcome");
        assert_eq!(ws.types[outcome.0].module, ["silcfm_types", "scheme"]);
        // Unique workspace-wide name resolves without an import.
        assert!(ws.resolve_type_name(0, "Local").is_some());
    }

    #[test]
    fn reexports_resolve_by_unique_name_in_crate() {
        let ws = ws(&[
            ("crates/types/src/lib.rs", "pub use scheme::MemoryScheme;"),
            ("crates/types/src/scheme.rs", "pub trait MemoryScheme {}"),
            (
                "crates/core/src/lib.rs",
                "use silcfm_types::MemoryScheme;\nstruct S;\nimpl MemoryScheme for S {}\n",
            ),
        ]);
        let tr = ws.resolve_trait_name(2, "MemoryScheme").expect("trait");
        assert_eq!(ws.traits[tr.0].module, ["silcfm_types", "scheme"]);
        assert_eq!(ws.traits[tr.0].impls.len(), 1);
    }

    #[test]
    fn foreign_impl_targets_get_stubs() {
        let ws = ws(&[(
            "crates/types/src/error.rs",
            "pub struct SilcFmError;\nimpl fmt::Display for SilcFmError { fn fmt(&self) -> u8 { 0 } }\n",
        )]);
        // `Display` is foreign: no trait sym, but the method still attaches
        // to the (workspace) type.
        assert!(ws.types[0].methods.contains_key("fmt"));
    }
}
