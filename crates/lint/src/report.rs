//! Rendering: human-readable text with `file:line` anchors, or `--json`
//! for tooling. JSON is emitted by hand — the crate is dependency-free.

use std::fmt::Write as _;

use crate::LintReport;

/// Renders the human-readable report. With `fix_hints`, each finding is
/// followed by its fix-it hint and the suppression syntax.
pub fn text(report: &LintReport, fix_hints: bool) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        if !f.chain.is_empty() {
            let _ = writeln!(out, "    call chain: {}", f.chain.join(" -> "));
        }
        if fix_hints {
            let _ = writeln!(out, "    fix: {}", f.hint);
            let _ = writeln!(
                out,
                "    suppress: // silcfm-lint: allow({}) -- <reason>",
                f.rule
            );
        }
    }
    let _ = writeln!(
        out,
        "silcfm-lint: {} finding{} ({} suppressed) across {} files",
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.suppressed,
        report.files_scanned
    );
    out
}

/// Renders the report as a JSON object with a `findings` array.
pub fn json(report: &LintReport) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let chain = f
            .chain
            .iter()
            .map(|hop| format!("\"{}\"", escape(hop)))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "{}\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"message\": \"{}\", \"hint\": \"{}\", \"chain\": [{chain}]}}",
            if i == 0 { "" } else { "," },
            f.rule,
            escape(&f.path),
            f.line,
            escape(&f.message),
            escape(&f.hint)
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"suppressed\": {},\n  \"files_scanned\": {}\n}}",
        report.suppressed, report.files_scanned
    );
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    fn one_finding() -> LintReport {
        LintReport {
            findings: vec![Finding {
                rule: "D1",
                path: "crates/sim/src/runner.rs".into(),
                line: 287,
                message: "default-hasher \"HashSet\"".into(),
                hint: "use FxHashSet".into(),
                chain: Vec::new(),
            }],
            suppressed: 2,
            files_scanned: 40,
        }
    }

    #[test]
    fn text_has_file_line_anchor() {
        let t = text(&one_finding(), false);
        assert!(t.contains("crates/sim/src/runner.rs:287: [D1]"));
        assert!(t.contains("1 finding (2 suppressed)"));
        assert!(!t.contains("fix:"));
    }

    #[test]
    fn fix_hints_show_suppression_syntax() {
        let t = text(&one_finding(), true);
        assert!(t.contains("fix: use FxHashSet"));
        assert!(t.contains("// silcfm-lint: allow(D1) -- <reason>"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let j = json(&one_finding());
        assert!(j.contains("\"rule\": \"D1\""));
        assert!(j.contains("\"line\": 287"));
        assert!(j.contains("default-hasher \\\"HashSet\\\""));
        assert!(j.contains("\"suppressed\": 2"));
    }

    #[test]
    fn chains_render_in_both_formats() {
        let mut r = one_finding();
        r.findings[0].chain = vec![
            "Ctl::access (crates/core/src/controller.rs:4)".to_string(),
            "helper (crates/core/src/util.rs:2)".to_string(),
        ];
        let t = text(&r, false);
        assert!(t.contains(
            "    call chain: Ctl::access (crates/core/src/controller.rs:4) \
             -> helper (crates/core/src/util.rs:2)"
        ));
        let j = json(&r);
        assert!(j.contains(
            "\"chain\": [\"Ctl::access (crates/core/src/controller.rs:4)\", \
             \"helper (crates/core/src/util.rs:2)\"]"
        ));
        // File-local findings carry an empty array, not a missing key.
        assert!(json(&one_finding()).contains("\"chain\": []"));
    }

    #[test]
    fn empty_report_renders() {
        let r = LintReport::default();
        assert!(text(&r, false).contains("0 findings"));
        assert!(json(&r).contains("\"findings\": ["));
    }
}
