//! Suppression directives.
//!
//! A finding is silenced by an inline directive in a comment:
//!
//! ```text
//! // silcfm-lint: allow(P1) -- index is bounded by the set size invariant
//! ```
//!
//! The directive applies to findings on its own line and on the line
//! immediately below it (so it can trail the offending code or sit on its
//! own line above). `allow(R1, R2)` lists several rules. A whole file is
//! exempted with `allow-file(RULE) -- reason`. The `-- reason` clause is
//! **mandatory**: a suppression with no recorded justification, an unknown
//! rule ID, or unparsable syntax is itself reported under rule `X1` and
//! cannot be suppressed.

use crate::lexer::Comment;
use crate::rules::RULE_IDS;
use crate::Finding;

/// The marker every directive starts with.
pub const MARKER: &str = "silcfm-lint:";

/// One parsed `allow` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule IDs this directive silences.
    pub rules: Vec<String>,
    /// Line the directive's comment starts on.
    pub line: usize,
    /// Whether the directive covers the entire file.
    pub file_wide: bool,
}

impl Allow {
    /// Whether this directive silences `rule` at `line`.
    pub fn covers(&self, rule: &str, line: usize) -> bool {
        self.rules.iter().any(|r| r == rule)
            && (self.file_wide || line == self.line || line == self.line + 1)
    }
}

/// Extracts directives from `comments`; malformed ones are appended to
/// `findings` as `X1` errors. `path` labels the findings.
pub fn parse(path: &str, comments: &[Comment], findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        let Some(at) = c.text.find(MARKER) else {
            continue;
        };
        let body = c.text[at + MARKER.len()..].trim();
        match parse_one(body) {
            Ok((rules, file_wide)) => allows.push(Allow {
                rules,
                line: c.line,
                file_wide,
            }),
            Err(why) => findings.push(Finding {
                rule: "X1",
                path: path.to_string(),
                line: c.line,
                message: format!("malformed silcfm-lint directive: {why}"),
                hint: format!(
                    "write `{MARKER} allow(<RULE>) -- <reason>`; the reason is mandatory"
                ),
                chain: Vec::new(),
            }),
        }
    }
    allows
}

/// Parses the directive body after the marker. Returns the allowed rule
/// list and whether it is file-wide.
fn parse_one(body: &str) -> Result<(Vec<String>, bool), String> {
    let (file_wide, rest) = if let Some(rest) = body.strip_prefix("allow-file") {
        (true, rest)
    } else if let Some(rest) = body.strip_prefix("allow") {
        (false, rest)
    } else {
        return Err(format!(
            "expected `allow(...)` or `allow-file(...)`, got `{body}`"
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("missing `(` after `allow`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("missing `)` in rule list".to_string());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("empty rule list".to_string());
    }
    for r in &rules {
        if !RULE_IDS.contains(&r.as_str()) {
            return Err(format!(
                "unknown rule `{r}` (known: {})",
                RULE_IDS.join(", ")
            ));
        }
    }
    let tail = rest[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err("missing `-- <reason>` clause".to_string());
    };
    if reason.trim().is_empty() {
        return Err("empty reason after `--`".to_string());
    }
    Ok((rules, file_wide))
}

/// Drops findings covered by an allow; `X1` findings are never dropped.
pub fn apply(findings: Vec<Finding>, allows: &[Allow]) -> (Vec<Finding>, usize) {
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for f in findings {
        let silenced = f.rule != "X1" && allows.iter().any(|a| a.covers(f.rule, f.line));
        if silenced {
            suppressed += 1;
        } else {
            kept.push(f);
        }
    }
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(line: usize, text: &str) -> Comment {
        Comment {
            line,
            end_line: line,
            text: text.to_string(),
        }
    }

    fn finding(rule: &'static str, line: usize) -> Finding {
        Finding {
            rule,
            path: "x.rs".into(),
            line,
            message: String::new(),
            hint: String::new(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn well_formed_directive_parses() {
        let mut errs = Vec::new();
        let allows = parse(
            "x.rs",
            &[comment(4, " silcfm-lint: allow(P1, A1) -- audited")],
            &mut errs,
        );
        assert!(errs.is_empty());
        assert_eq!(allows.len(), 1);
        assert!(allows[0].covers("P1", 4));
        assert!(allows[0].covers("A1", 5));
        assert!(!allows[0].covers("P1", 6));
        assert!(!allows[0].covers("D1", 4));
    }

    #[test]
    fn file_wide_directive_covers_every_line() {
        let mut errs = Vec::new();
        let allows = parse(
            "x.rs",
            &[comment(
                1,
                " silcfm-lint: allow-file(D2) -- wall-clock demo only",
            )],
            &mut errs,
        );
        assert!(errs.is_empty());
        assert!(allows[0].covers("D2", 999));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let mut errs = Vec::new();
        let allows = parse("x.rs", &[comment(7, " silcfm-lint: allow(P1)")], &mut errs);
        assert!(allows.is_empty());
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].rule, "X1");
        assert_eq!(errs[0].line, 7);
    }

    #[test]
    fn empty_reason_is_an_error() {
        let mut errs = Vec::new();
        parse(
            "x.rs",
            &[comment(7, " silcfm-lint: allow(P1) --   ")],
            &mut errs,
        );
        assert_eq!(errs.len(), 1);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let mut errs = Vec::new();
        parse(
            "x.rs",
            &[comment(2, " silcfm-lint: allow(Z9) -- hm")],
            &mut errs,
        );
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("unknown rule"));
    }

    #[test]
    fn apply_suppresses_only_covered_lines() {
        let allows = vec![Allow {
            rules: vec!["P1".into()],
            line: 10,
            file_wide: false,
        }];
        let (kept, n) = apply(
            vec![
                finding("P1", 10),
                finding("P1", 11),
                finding("P1", 12),
                finding("A1", 10),
            ],
            &allows,
        );
        assert_eq!(n, 2);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn x1_cannot_be_suppressed() {
        let allows = vec![Allow {
            rules: vec!["X1".into()],
            line: 1,
            file_wide: true,
        }];
        let (kept, _) = apply(vec![finding("X1", 1)], &allows);
        assert_eq!(kept.len(), 1);
    }
}
