//! A recursive-descent *item* parser over the [`crate::lexer`] token stream.
//!
//! The workspace-wide rules (interprocedural A1/P1, the N1/F1/T1
//! determinism-taint passes) need more structure than token patterns: which
//! functions exist, which impl block owns them, what their parameters are
//! typed as, what a file imports. This parser recovers exactly that — an
//! *item tree* (fn / impl / mod / use / struct / enum / trait / const …)
//! with token-index spans — and deliberately nothing more: statement and
//! expression structure stays token-level, where the rule engine's pattern
//! helpers already work well.
//!
//! Guarantees the property tests pin (`tests/parser_props.rs`):
//!
//! * the parser consumes every workspace source with **zero errors**;
//! * item spans are **well-nested**: children lie strictly inside their
//!   parent, siblings are disjoint and ordered;
//! * [`pretty`]-printing a tree and re-parsing yields a **span-stable**
//!   tree: same item structure, same relative token spans.

use std::ops::Range;

use crate::lexer::{Lexed, Token, TokenKind};

/// One parse error; the workspace must parse with none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// What the parser could not make sense of.
    pub what: String,
}

/// A function signature, as far as the analyzer needs it: parameter names
/// with *base type idents* (the head of the type path, wrappers stripped)
/// and generic parameters with their first trait bound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSig {
    /// Whether the fn takes `self` (is a method).
    pub has_self: bool,
    /// `(name, base type ident)` per non-self parameter; the base type is
    /// `""` when no single ident describes it (closures, tuples, fn ptrs).
    pub params: Vec<(String, String)>,
    /// `(generic param, first bound ident)`, e.g. `("T", "Tracer")`.
    pub generics: Vec<(String, String)>,
}

/// One struct field: name and base type ident (wrappers such as `&`, `Box`,
/// `Option`, `Vec`, `dyn`/`impl` stripped down to the innermost path head
/// that could name a workspace type).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub ty: String,
}

/// One `use` leaf: the local name it binds and the full path it names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// The identifier visible in this module (alias or last segment).
    pub alias: String,
    /// Full path segments as written (`crate`, `super`, crate names kept).
    pub path: Vec<String>,
}

/// What an [`Item`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name;` or `mod name { … }`.
    Mod {
        inline: bool,
    },
    /// A function; `body` is the token range strictly between its braces.
    Fn {
        sig: FnSig,
        body: Option<Range<usize>>,
    },
    /// An impl block. `self_ty` is the base ident of the implemented type;
    /// `trait_name` the base ident of the trait for trait impls.
    Impl {
        self_ty: String,
        trait_name: Option<String>,
        /// `(generic param, first bound ident)` from `impl<…>`.
        generics: Vec<(String, String)>,
    },
    /// A trait declaration (children are its associated items).
    Trait,
    /// A struct; named fields captured for receiver-type resolution.
    Struct {
        fields: Vec<Field>,
        /// `(generic param, first bound ident)` from `struct Name<…>`.
        generics: Vec<(String, String)>,
    },
    Enum,
    Union,
    /// One `use` item, flattened to its leaves.
    Use {
        imports: Vec<UseImport>,
    },
    Const,
    Static,
    TypeAlias,
    /// `macro_rules!` definition or an item-position macro invocation.
    Macro,
    /// `extern "abi" { … }` block.
    ExternBlock,
}

/// One parsed item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name (`""` for impls and uses).
    pub name: String,
    /// 1-based line of the item's first token (after attributes).
    pub line: usize,
    /// Token-index span of the whole item, attributes included
    /// (half-open: `span.end` is one past the last token).
    pub span: Range<usize>,
    /// Nested items (mod/impl/trait members, fns nested in fn bodies).
    pub children: Vec<Item>,
    /// Whether a `#[cfg(test)]` attribute gates this item.
    pub cfg_test: bool,
}

/// The parse result for one file.
#[derive(Debug, Default)]
pub struct ItemTree {
    pub items: Vec<Item>,
    pub errors: Vec<ParseError>,
}

/// Parses the items of one lexed file.
pub fn parse(lexed: &Lexed) -> ItemTree {
    let mut tree = ItemTree::default();
    let mut p = Parser {
        toks: &lexed.tokens,
        errors: &mut tree.errors,
    };
    tree.items = p.items(0, lexed.tokens.len(), ItemCtx::Top);
    tree
}

/// Keywords that *start* an item, after attributes/visibility/qualifiers.
const ITEM_STARTS: &[&str] = &[
    "mod",
    "fn",
    "impl",
    "trait",
    "struct",
    "enum",
    "union",
    "use",
    "const",
    "static",
    "type",
    "extern",
    "macro_rules",
];

/// Where the parser currently is; trait bodies allow bodiless fns, fn
/// bodies only yield nested `fn` items.
#[derive(Clone, Copy, PartialEq)]
enum ItemCtx {
    Top,
    FnBody,
}

struct Parser<'a> {
    toks: &'a [Token],
    errors: &'a mut Vec<ParseError>,
}

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&'a Token> {
        self.toks.get(i)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| {
            t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c)
        })
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.tok(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
    }

    fn any_ident(&self, i: usize) -> Option<&'a str> {
        self.tok(i).and_then(|t| {
            if t.kind == TokenKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            }
        })
    }

    fn line(&self, i: usize) -> usize {
        self.tok(i)
            .or_else(|| self.toks.last())
            .map_or(1, |t| t.line)
    }

    fn err(&mut self, i: usize, what: impl Into<String>) {
        self.errors.push(ParseError {
            line: self.line(i),
            what: what.into(),
        });
    }

    /// Index just past the delimiter-balanced region starting at the
    /// opening delimiter at `open` (`{`/`(`/`[`); stops at `end`.
    fn skip_balanced(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i64;
        let mut i = open;
        while i < end {
            if let Some(t) = self.tok(i) {
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => {
                            depth -= 1;
                            if depth <= 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                }
            }
            i += 1;
        }
        end
    }

    /// Skips to just past the `;` at delimiter depth 0, or past a balanced
    /// brace block if one appears first (`const X: T = S { .. };` keeps
    /// scanning — the `;` search tracks depth, so struct literals are fine).
    fn skip_to_semi(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i64;
        while i < end {
            if let Some(t) = self.tok(i) {
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => depth -= 1,
                        ";" if depth <= 0 => return i + 1,
                        _ => {}
                    }
                }
            }
            i += 1;
        }
        end
    }

    /// Parses attributes starting at `i`; returns `(next index, cfg_test)`.
    fn attributes(&self, mut i: usize, end: usize) -> (usize, bool) {
        let mut cfg_test = false;
        while self.is_punct(i, '#') {
            let mut j = i + 1;
            if self.is_punct(j, '!') {
                j += 1;
            }
            if !self.is_punct(j, '[') {
                break;
            }
            let close = self.skip_balanced(j, end);
            // `cfg` … `test` inside the bracket marks a test-only item.
            let body = &self.toks[j..close];
            if body.iter().any(|t| t.text == "cfg") && body.iter().any(|t| t.text == "test") {
                cfg_test = true;
            }
            i = close;
        }
        (i, cfg_test)
    }

    /// Skips visibility (`pub`, `pub(crate)`, `pub(in path)`).
    fn visibility(&self, mut i: usize, end: usize) -> usize {
        if self.is_ident(i, "pub") {
            i += 1;
            if self.is_punct(i, '(') {
                i = self.skip_balanced(i, end);
            }
        }
        i
    }

    /// Skips fn qualifiers (`const`/`async`/`unsafe`/`extern "abi"` before
    /// `fn`, `unsafe` before `impl`/`trait`). `const NAME` and a bare
    /// `extern` block are items themselves and stay put.
    fn fn_qualifiers(&self, mut i: usize) -> usize {
        loop {
            let next_kw = |j: usize| {
                self.is_ident(j, "fn")
                    || self.is_ident(j, "const")
                    || self.is_ident(j, "async")
                    || self.is_ident(j, "unsafe")
                    || self.is_ident(j, "extern")
            };
            if (self.is_ident(i, "const") && next_kw(i + 1))
                || ((self.is_ident(i, "async") || self.is_ident(i, "unsafe"))
                    && (next_kw(i + 1)
                        || self.is_ident(i + 1, "impl")
                        || self.is_ident(i + 1, "trait")))
            {
                i += 1;
            } else if self.is_ident(i, "extern")
                && (self.is_ident(i + 1, "fn")
                    || (self.tok(i + 1).is_some_and(|t| t.kind == TokenKind::Str)
                        && self.is_ident(i + 2, "fn")))
            {
                i += 1;
                if self.tok(i).is_some_and(|t| t.kind == TokenKind::Str) {
                    i += 1;
                }
            } else {
                return i;
            }
        }
    }

    /// Parses a generics list `<…>` at `i` if present; returns the index
    /// past it and the `(param, first bound)` pairs.
    fn generics(&self, mut i: usize, end: usize) -> (usize, Vec<(String, String)>) {
        let mut out = Vec::new();
        if !self.is_punct(i, '<') {
            return (i, out);
        }
        let mut depth = 0i64;
        let mut expecting_param = true;
        while i < end {
            let Some(t) = self.tok(i) else { break };
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "<" => {
                        depth += 1;
                        if depth == 1 {
                            expecting_param = true;
                        }
                    }
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            return (i + 1, out);
                        }
                    }
                    "," if depth == 1 => expecting_param = true,
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    _ => {}
                }
                i += 1;
                continue;
            }
            if depth == 1 && expecting_param {
                if t.kind == TokenKind::Ident && !is_kw(&t.text) && t.text != "const" {
                    // `T` or `T: Bound`; capture the first bound ident.
                    let param = t.text.clone();
                    let mut bound = String::new();
                    if self.is_punct(i + 1, ':') && !self.is_punct(i + 2, ':') {
                        let mut j = i + 2;
                        // Skip leading lifetimes / `?` / `dyn`.
                        loop {
                            if self.tok(j).is_some_and(|t| t.kind == TokenKind::Lifetime)
                                || self.is_punct(j, '?')
                                || self.is_punct(j, '+')
                                || self.is_ident(j, "dyn")
                            {
                                j += 1;
                            } else {
                                break;
                            }
                        }
                        if let Some(b) = self.any_ident(j) {
                            if !is_kw(b) {
                                bound = b.to_string();
                            }
                        }
                    }
                    out.push((param, bound));
                }
                expecting_param = false;
            }
            i += 1;
        }
        (i, out)
    }

    /// Base type ident of the type starting at `i`: strips `&`, `mut`,
    /// lifetimes, `dyn`/`impl`, and transparent wrappers (`Box<…>`,
    /// `Option<…>`, `Rc`, `Arc`), returning the head ident of what remains
    /// (plus the index past the whole type, delimiter-balanced).
    fn base_type(&self, mut i: usize, end: usize) -> (String, usize) {
        const WRAPPERS: &[&str] = &["Box", "Option", "Rc", "Arc"];
        // Strip reference/pointer/qualifier prefixes.
        loop {
            if self.is_punct(i, '&')
                || self.is_punct(i, '*')
                || self.is_ident(i, "mut")
                || self.is_ident(i, "dyn")
                || self.is_ident(i, "impl")
                || self.tok(i).is_some_and(|t| t.kind == TokenKind::Lifetime)
            {
                i += 1;
            } else {
                break;
            }
        }
        // Walk the path, remembering the last segment as the head.
        let mut head = String::new();
        if let Some(first) = self.any_ident(i) {
            if !is_kw(first) || first == "crate" || first == "super" || first == "self" {
                head = first.to_string();
                i += 1;
                while self.is_punct(i, ':') && self.is_punct(i + 1, ':') {
                    if let Some(seg) = self.any_ident(i + 2) {
                        head = seg.to_string();
                        i += 3;
                    } else {
                        break;
                    }
                }
            }
        }
        // Unwrap one layer of transparent wrapper: `Box<dyn Trait>` and
        // `Option<FaultDriver>` resolve to the payload type.
        if WRAPPERS.contains(&head.as_str()) && self.is_punct(i, '<') {
            let (inner, after_inner) = self.base_type(i + 1, end);
            if !inner.is_empty() {
                head = inner;
            }
            // Consume to the matching `>`.
            let mut depth = 1i64;
            let mut j = after_inner;
            while j < end && depth > 0 {
                if self.is_punct(j, '<') {
                    depth += 1;
                } else if self.is_punct(j, '>') {
                    depth -= 1;
                }
                j += 1;
            }
            return (head, j);
        }
        // Consume trailing generic args.
        if self.is_punct(i, '<') {
            let mut depth = 0i64;
            while i < end {
                if self.is_punct(i, '<') {
                    depth += 1;
                } else if self.is_punct(i, '>') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                } else if self.is_punct(i, '(') || self.is_punct(i, '[') {
                    i = self.skip_balanced(i, end);
                    continue;
                }
                i += 1;
            }
        } else if self.is_punct(i, '(') || self.is_punct(i, '[') {
            // Tuple / slice / fn-pointer types: no single head ident.
            i = self.skip_balanced(i, end);
        }
        (head, i)
    }

    /// Parses a fn parameter list starting at its `(`; returns the sig
    /// fields and the index past the `)`.
    fn params(&self, open: usize, end: usize) -> (bool, Vec<(String, String)>, usize) {
        let close = self.skip_balanced(open, end);
        let mut has_self = false;
        let mut params = Vec::new();
        let mut i = open + 1;
        while i < close.saturating_sub(1) {
            // Skip a leading `&`/`&'a`/`mut` run, then look at the binding.
            let mut j = i;
            while self.is_punct(j, '&')
                || self.is_ident(j, "mut")
                || self.tok(j).is_some_and(|t| t.kind == TokenKind::Lifetime)
            {
                j += 1;
            }
            if self.is_ident(j, "self") {
                has_self = true;
                i = self.next_param(j + 1, close - 1);
                continue;
            }
            // `name: Type` (ignore patterns: `_`, tuples, etc. keep "").
            if let Some(name) = self.any_ident(j) {
                if !is_kw(name) && self.is_punct(j + 1, ':') && !self.is_punct(j + 2, ':') {
                    let (ty, _) = self.base_type(j + 2, close - 1);
                    params.push((name.to_string(), ty));
                }
            }
            i = self.next_param(j, close - 1);
        }
        (has_self, params, close)
    }

    /// Index of the token after the next top-level `,` (or `end`).
    fn next_param(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i64;
        while i < end {
            if let Some(t) = self.tok(i) {
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" | "<" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ">" if depth > 0 => depth -= 1,
                        "," if depth <= 0 => return i + 1,
                        _ => {}
                    }
                }
            }
            i += 1;
        }
        end
    }

    /// Finds the body `{` of a fn/impl/trait header starting at `i`:
    /// the first `{` at paren/bracket depth 0 that is not inside generic
    /// angles. Returns `Err(semi_index)` for bodiless (`;`) items.
    fn find_body(&self, mut i: usize, end: usize) -> Result<usize, usize> {
        let mut depth = 0i64;
        let mut angle = 0i64;
        while i < end {
            if let Some(t) = self.tok(i) {
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "<" => angle += 1,
                        ">" => {
                            // `->` keeps angle depth: the `-` precedes it.
                            let arrow = i > 0 && self.is_punct(i - 1, '-');
                            if !arrow && angle > 0 {
                                angle -= 1;
                            }
                        }
                        ";" if depth <= 0 && angle <= 0 => return Err(i),
                        "{" if depth <= 0 && angle <= 0 => return Ok(i),
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        _ => {}
                    }
                }
            }
            i += 1;
        }
        Err(end)
    }

    /// Parses items in `[start, end)`; `ctx` selects what counts as one.
    fn items(&mut self, start: usize, end: usize, ctx: ItemCtx) -> Vec<Item> {
        let mut out = Vec::new();
        let mut i = start;
        while i < end {
            match self.item(i, end, ctx) {
                Some(item) => {
                    i = item.span.end;
                    out.push(item);
                }
                None => {
                    if ctx == ItemCtx::Top {
                        // At item position everything must parse.
                        let t = &self.toks[i];
                        self.err(i, format!("unexpected token `{}` at item position", t.text));
                    }
                    i = self.skip_non_item(i, end, ctx);
                }
            }
        }
        out
    }

    /// Advances past one non-item region. At top level that is one token
    /// (error recovery); inside fn bodies it skips whole nested blocks so
    /// expression braces never confuse the nested-item scan.
    fn skip_non_item(&self, i: usize, end: usize, ctx: ItemCtx) -> usize {
        if ctx == ItemCtx::FnBody
            && (self.is_punct(i, '{') || self.is_punct(i, '(') || self.is_punct(i, '['))
        {
            return self.skip_balanced(i, end);
        }
        i + 1
    }

    /// Tries to parse one item at `i`. Inside fn bodies only `fn` items are
    /// recognized (plus `use`/`const`, silently consumed for spans).
    fn item(&mut self, at: usize, end: usize, ctx: ItemCtx) -> Option<Item> {
        let (mut i, cfg_test) = self.attributes(at, end);
        i = self.visibility(i, end);
        let kw_at = self.fn_qualifiers(i);
        let kw = self.any_ident(kw_at)?;

        if ctx == ItemCtx::FnBody {
            // Nested items worth a node: `fn name(…)`. Anything else in a
            // body is expression text.
            if kw == "fn" && self.any_ident(kw_at + 1).is_some() {
                return self.fn_item(at, kw_at, end, cfg_test);
            }
            return None;
        }
        if !ITEM_STARTS.contains(&kw) {
            // `macro_name! { … }` at item position.
            if self.is_punct(kw_at + 1, '!') {
                return Some(self.macro_item(at, kw_at, end, cfg_test));
            }
            return None;
        }
        match kw {
            "fn" => self.fn_item(at, kw_at, end, cfg_test),
            "mod" => self.mod_item(at, kw_at, end, cfg_test),
            "impl" => self.impl_item(at, kw_at, end, cfg_test),
            "trait" => self.trait_item(at, kw_at, end, cfg_test),
            "struct" | "enum" | "union" => self.struct_like(at, kw_at, end, cfg_test, kw),
            "use" => self.use_item(at, kw_at, end, cfg_test),
            "const" | "static" | "type" => {
                let kind = match kw {
                    "const" => ItemKind::Const,
                    "static" => ItemKind::Static,
                    _ => ItemKind::TypeAlias,
                };
                let name = self
                    .any_ident(kw_at + 1)
                    .or_else(|| self.any_ident(kw_at + 2)) // `static mut NAME`
                    .unwrap_or("")
                    .to_string();
                let close = self.skip_to_semi(kw_at + 1, end);
                Some(self.leaf(kind, name, at, kw_at, close, cfg_test))
            }
            "extern" => {
                // `extern "C" { … }` block (extern fns in it are foreign).
                let mut j = kw_at + 1;
                if self.tok(j).is_some_and(|t| t.kind == TokenKind::Str) {
                    j += 1;
                }
                let close = if self.is_punct(j, '{') {
                    self.skip_balanced(j, end)
                } else {
                    self.skip_to_semi(j, end)
                };
                Some(self.leaf(
                    ItemKind::ExternBlock,
                    String::new(),
                    at,
                    kw_at,
                    close,
                    cfg_test,
                ))
            }
            "macro_rules" => Some(self.macro_item(at, kw_at, end, cfg_test)),
            _ => None,
        }
    }

    fn leaf(
        &self,
        kind: ItemKind,
        name: String,
        at: usize,
        kw_at: usize,
        close: usize,
        cfg_test: bool,
    ) -> Item {
        Item {
            kind,
            name,
            line: self.line(kw_at),
            span: at..close,
            children: Vec::new(),
            cfg_test,
        }
    }

    fn macro_item(&mut self, at: usize, kw_at: usize, end: usize, cfg_test: bool) -> Item {
        // `macro_rules ! name { … }` or `path::mac! { … }` / `mac!(…);`
        let mut j = kw_at + 1;
        while !self.is_punct(j, '!') && j < end {
            j += 1;
        }
        let name = self.any_ident(j + 1).unwrap_or("").to_string();
        let mut k = j + 1;
        if !name.is_empty() {
            k += 1;
        }
        let close = if self.is_punct(k, '{') {
            self.skip_balanced(k, end)
        } else {
            self.skip_to_semi(k, end)
        };
        self.leaf(ItemKind::Macro, name, at, kw_at, close, cfg_test)
    }

    fn fn_item(&mut self, at: usize, kw_at: usize, end: usize, cfg_test: bool) -> Option<Item> {
        let name = self.any_ident(kw_at + 1)?.to_string();
        let (mut i, generics) = self.generics(kw_at + 2, end);
        if !self.is_punct(i, '(') {
            self.err(i, format!("expected `(` after fn `{name}`"));
            return Some(self.leaf(
                ItemKind::Fn {
                    sig: FnSig::default(),
                    body: None,
                },
                name,
                at,
                kw_at,
                self.skip_to_semi(i, end),
                cfg_test,
            ));
        }
        let (has_self, params, after_params) = self.params(i, end);
        let sig = FnSig {
            has_self,
            params,
            generics,
        };
        i = after_params;
        match self.find_body(i, end) {
            Ok(open) => {
                let close = self.skip_balanced(open, end);
                let body = open + 1..close.saturating_sub(1);
                let children = self.items(body.start, body.end, ItemCtx::FnBody);
                Some(Item {
                    kind: ItemKind::Fn {
                        sig,
                        body: Some(body),
                    },
                    name,
                    line: self.line(kw_at),
                    span: at..close,
                    children,
                    cfg_test,
                })
            }
            Err(semi) => Some(self.leaf(
                ItemKind::Fn { sig, body: None },
                name,
                at,
                kw_at,
                (semi + 1).min(end),
                cfg_test,
            )),
        }
    }

    fn mod_item(&mut self, at: usize, kw_at: usize, end: usize, cfg_test: bool) -> Option<Item> {
        let name = self.any_ident(kw_at + 1)?.to_string();
        if self.is_punct(kw_at + 2, ';') {
            return Some(self.leaf(
                ItemKind::Mod { inline: false },
                name,
                at,
                kw_at,
                kw_at + 3,
                cfg_test,
            ));
        }
        if !self.is_punct(kw_at + 2, '{') {
            self.err(
                kw_at + 2,
                format!("expected `;` or `{{` after mod `{name}`"),
            );
            return Some(self.leaf(
                ItemKind::Mod { inline: false },
                name,
                at,
                kw_at,
                kw_at + 2,
                cfg_test,
            ));
        }
        let close = self.skip_balanced(kw_at + 2, end);
        let children = self.items(kw_at + 3, close.saturating_sub(1), ItemCtx::Top);
        Some(Item {
            kind: ItemKind::Mod { inline: true },
            name,
            line: self.line(kw_at),
            span: at..close,
            children,
            cfg_test,
        })
    }

    fn impl_item(&mut self, at: usize, kw_at: usize, end: usize, cfg_test: bool) -> Option<Item> {
        let (mut i, generics) = self.generics(kw_at + 1, end);
        // First type path; if `for` follows it was the trait.
        let (first, after_first) = self.base_type(i, end);
        i = after_first;
        let (self_ty, trait_name) = if self.is_ident(i, "for") {
            let (ty, after_ty) = self.base_type(i + 1, end);
            i = after_ty;
            (ty, Some(first))
        } else {
            (first, None)
        };
        match self.find_body(i, end) {
            Ok(open) => {
                let close = self.skip_balanced(open, end);
                let children = self.items(open + 1, close.saturating_sub(1), ItemCtx::Top);
                Some(Item {
                    kind: ItemKind::Impl {
                        self_ty,
                        trait_name,
                        generics,
                    },
                    name: String::new(),
                    line: self.line(kw_at),
                    span: at..close,
                    children,
                    cfg_test,
                })
            }
            Err(semi) => {
                self.err(kw_at, "impl without a body");
                Some(self.leaf(
                    ItemKind::Impl {
                        self_ty,
                        trait_name,
                        generics,
                    },
                    String::new(),
                    at,
                    kw_at,
                    (semi + 1).min(end),
                    cfg_test,
                ))
            }
        }
    }

    fn trait_item(&mut self, at: usize, kw_at: usize, end: usize, cfg_test: bool) -> Option<Item> {
        let name = self.any_ident(kw_at + 1)?.to_string();
        let i = kw_at + 2;
        match self.find_body(i, end) {
            Ok(open) => {
                let close = self.skip_balanced(open, end);
                let children = self.items(open + 1, close.saturating_sub(1), ItemCtx::Top);
                Some(Item {
                    kind: ItemKind::Trait,
                    name,
                    line: self.line(kw_at),
                    span: at..close,
                    children,
                    cfg_test,
                })
            }
            Err(semi) => Some(self.leaf(
                ItemKind::Trait,
                name,
                at,
                kw_at,
                (semi + 1).min(end),
                cfg_test,
            )),
        }
    }

    fn struct_like(
        &mut self,
        at: usize,
        kw_at: usize,
        end: usize,
        cfg_test: bool,
        kw: &str,
    ) -> Option<Item> {
        let name = self.any_ident(kw_at + 1)?.to_string();
        let (i, generics) = self.generics(kw_at + 2, end);
        let kind_of = |fields| match kw {
            "struct" => ItemKind::Struct {
                fields,
                generics: generics.clone(),
            },
            "union" => ItemKind::Union,
            _ => ItemKind::Enum,
        };
        match self.find_body(i, end) {
            Ok(open) => {
                let close = self.skip_balanced(open, end);
                let fields = if kw == "struct" {
                    self.fields(open + 1, close.saturating_sub(1))
                } else {
                    Vec::new()
                };
                Some(self.leaf(kind_of(fields), name, at, kw_at, close, cfg_test))
            }
            Err(semi) => {
                // Unit struct `struct S;` or tuple struct `struct S(u8);`
                // — `skip_to_semi` from the header covers both.
                let close = (semi + 1).min(end);
                Some(self.leaf(kind_of(Vec::new()), name, at, kw_at, close, cfg_test))
            }
        }
    }

    /// Parses `name: Type, …` struct fields in `[start, end)`.
    fn fields(&self, start: usize, end: usize) -> Vec<Field> {
        let mut out = Vec::new();
        let mut i = start;
        while i < end {
            let (j, _) = self.attributes(i, end);
            let j = self.visibility(j, end);
            if let Some(name) = self.any_ident(j) {
                if !is_kw(name) && self.is_punct(j + 1, ':') && !self.is_punct(j + 2, ':') {
                    let (ty, _) = self.base_type(j + 2, end);
                    out.push(Field {
                        name: name.to_string(),
                        ty,
                    });
                }
            }
            i = self.next_param(j.max(i), end);
            if i <= j {
                break;
            }
        }
        out
    }

    fn use_item(&mut self, at: usize, kw_at: usize, end: usize, cfg_test: bool) -> Option<Item> {
        let close = self.skip_to_semi(kw_at + 1, end);
        let mut imports = Vec::new();
        self.use_tree(
            kw_at + 1,
            close.saturating_sub(1),
            &mut Vec::new(),
            &mut imports,
        );
        Some(self.leaf(
            ItemKind::Use { imports },
            String::new(),
            at,
            kw_at,
            close,
            cfg_test,
        ))
    }

    /// Flattens one use-tree region into leaves, extending `prefix`.
    fn use_tree(
        &self,
        start: usize,
        end: usize,
        prefix: &mut Vec<String>,
        out: &mut Vec<UseImport>,
    ) {
        let mut i = start;
        let mut segs: Vec<String> = Vec::new();
        let flush = |segs: &mut Vec<String>,
                     prefix: &[String],
                     alias: Option<String>,
                     out: &mut Vec<UseImport>| {
            if segs.is_empty() {
                return;
            }
            let mut path: Vec<String> = prefix.to_vec();
            path.extend(segs.iter().cloned());
            let alias = alias.unwrap_or_else(|| segs.last().cloned().unwrap_or_default());
            // `use path::{self}` re-binds the module itself.
            let alias = if alias == "self" {
                path.pop();
                path.last().cloned().unwrap_or_default()
            } else {
                alias
            };
            out.push(UseImport { alias, path });
            segs.clear();
        };
        while i < end {
            let t = &self.toks[i];
            match (&t.kind, t.text.as_str()) {
                (TokenKind::Ident, "as") => {
                    let alias = self.any_ident(i + 1).map(str::to_string);
                    flush(&mut segs, prefix, alias, out);
                    i += 2;
                }
                (TokenKind::Ident, _) => {
                    segs.push(t.text.clone());
                    i += 1;
                }
                (TokenKind::Punct, ":") => i += 1,
                (TokenKind::Punct, ",") => {
                    flush(&mut segs, prefix, None, out);
                    i += 1;
                }
                (TokenKind::Punct, "{") => {
                    let close = self.skip_balanced(i, end);
                    let depth_here = segs.len();
                    prefix.append(&mut segs);
                    self.use_tree(i + 1, close.saturating_sub(1), prefix, out);
                    prefix.truncate(prefix.len() - depth_here);
                    i = close;
                }
                (TokenKind::Punct, "*") => {
                    // Glob import: record the module itself under `*`.
                    segs.push("*".to_string());
                    flush(&mut segs, prefix, Some("*".to_string()), out);
                    i += 1;
                }
                _ => i += 1,
            }
        }
        flush(&mut segs, prefix, None, out);
    }
}

fn is_kw(text: &str) -> bool {
    crate::rules::is_keyword(text)
}

/// Pretty-prints a parsed file back to compilable-shaped text: every item's
/// token span verbatim, single-space separated, one top-level item per
/// line. Re-lexing and re-parsing the result yields the same item tree
/// modulo absolute token offsets (see [`span_stable_eq`]).
pub fn pretty(tree: &ItemTree, toks: &[Token]) -> String {
    let mut out = String::new();
    for item in &tree.items {
        let mut line = String::new();
        for t in &toks[item.span.start..item.span.end.min(toks.len())] {
            if !line.is_empty() {
                line.push(' ');
            }
            line.push_str(&print_token(t));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Renders one token so that re-lexing it yields the same (kind, text).
fn print_token(t: &Token) -> String {
    match t.kind {
        TokenKind::Ident | TokenKind::Number | TokenKind::Punct => t.text.clone(),
        TokenKind::Lifetime => format!("'{}", t.text),
        TokenKind::Char => format!("'{}'", t.text),
        TokenKind::Str => {
            if t.text.contains('"') || t.text.contains('\\') {
                // Raw string with a fence wide enough for the content.
                let mut fence = 0usize;
                while t.text.contains(&format!("\"{}", "#".repeat(fence))) {
                    fence += 1;
                }
                let f = "#".repeat(fence);
                format!("r{f}\"{}\"{f}", t.text)
            } else {
                format!("\"{}\"", t.text)
            }
        }
    }
}

/// Structural equality up to absolute token offsets: same kinds, names,
/// children, and same span *lengths* with the same relative child offsets.
pub fn span_stable_eq(a: &[Item], b: &[Item]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(x, y)| {
        x.name == y.name
            && kind_tag(&x.kind) == kind_tag(&y.kind)
            && x.span.len() == y.span.len()
            && x.children.len() == y.children.len()
            && x.children
                .iter()
                .zip(&y.children)
                .all(|(cx, cy)| cx.span.start - x.span.start == cy.span.start - y.span.start)
            && span_stable_eq(&x.children, &y.children)
    })
}

/// Discriminant-plus-payload tag for structural comparison.
fn kind_tag(k: &ItemKind) -> String {
    match k {
        ItemKind::Mod { inline } => format!("mod/{inline}"),
        ItemKind::Fn { sig, body } => format!(
            "fn/self={} params={} body={}",
            sig.has_self,
            sig.params.len(),
            body.is_some()
        ),
        ItemKind::Impl {
            self_ty,
            trait_name,
            ..
        } => format!("impl/{self_ty}/{trait_name:?}"),
        ItemKind::Trait => "trait".into(),
        ItemKind::Struct { fields, .. } => format!("struct/{}", fields.len()),
        ItemKind::Enum => "enum".into(),
        ItemKind::Union => "union".into(),
        ItemKind::Use { imports } => format!("use/{}", imports.len()),
        ItemKind::Const => "const".into(),
        ItemKind::Static => "static".into(),
        ItemKind::TypeAlias => "type".into(),
        ItemKind::Macro => "macro".into(),
        ItemKind::ExternBlock => "extern".into(),
    }
}

/// Checks that sibling spans are ordered and disjoint and children nest
/// strictly inside parents; returns the first violation as text.
pub fn check_nesting(items: &[Item], parent: Option<&Range<usize>>) -> Result<(), String> {
    let mut prev_end = parent.map_or(0, |p| p.start);
    for item in items {
        if item.span.start < prev_end {
            return Err(format!(
                "item `{}` at line {} overlaps its predecessor",
                item.name, item.line
            ));
        }
        if let Some(p) = parent {
            if item.span.start < p.start || item.span.end > p.end {
                return Err(format!(
                    "item `{}` at line {} escapes its parent span",
                    item.name, item.line
                ));
            }
        }
        check_nesting(&item.children, Some(&item.span))?;
        prev_end = item.span.end;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> ItemTree {
        parse(&lex(src))
    }

    fn names(items: &[Item]) -> Vec<&str> {
        items.iter().map(|i| i.name.as_str()).collect()
    }

    #[test]
    fn parses_top_level_items() {
        let t = tree_of(
            "use a::b;\nconst N: usize = 4;\nstruct S { x: u32 }\nfn f() {}\nmod m { fn g() {} }\n",
        );
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        assert_eq!(t.items.len(), 5);
        assert_eq!(names(&t.items[4].children), vec!["g"]);
    }

    #[test]
    fn impl_headers_resolve_self_and_trait() {
        let t = tree_of(
            "impl Foo { fn a(&self) {} }\n\
             impl<T: Tracer> Scheme for Silc<T> { fn access(&mut self) {} }\n\
             impl fmt::Display for Bar { }\n\
             impl<'a> IntoIterator for &'a OpList { }\n",
        );
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        let tags: Vec<String> = t.items.iter().map(|i| kind_tag(&i.kind)).collect();
        assert!(tags[0].starts_with("impl/Foo/None"), "{tags:?}");
        assert!(tags[1].contains("impl/Silc/Some(\"Scheme\")"), "{tags:?}");
        assert!(tags[2].contains("impl/Bar/Some(\"Display\")"), "{tags:?}");
        assert!(
            tags[3].contains("impl/OpList/Some(\"IntoIterator\")"),
            "{tags:?}"
        );
    }

    #[test]
    fn fn_sigs_capture_params_and_bounds() {
        let t = tree_of("fn run<F: RecordFeed>(&mut self, feed: &mut F, n: u64) -> u64 { 0 }");
        let ItemKind::Fn { sig, body } = &t.items[0].kind else {
            panic!("not a fn")
        };
        assert!(sig.has_self);
        assert_eq!(
            sig.params,
            vec![("feed".into(), "F".into()), ("n".into(), "u64".into())]
        );
        assert_eq!(sig.generics, vec![("F".into(), "RecordFeed".into())]);
        assert!(body.is_some());
    }

    #[test]
    fn struct_fields_unwrap_transparent_wrappers() {
        let t = tree_of(
            "struct System<T: Tracer> { scheme: Box<dyn MemoryScheme>, driver: Option<FaultDriver>, lanes: Vec<Lane>, tracer: T }",
        );
        let ItemKind::Struct { fields, generics } = &t.items[0].kind else {
            panic!("not a struct")
        };
        let tys: Vec<&str> = fields.iter().map(|f| f.ty.as_str()).collect();
        assert_eq!(tys, vec!["MemoryScheme", "FaultDriver", "Vec", "T"]);
        assert_eq!(generics, &vec![("T".to_string(), "Tracer".to_string())]);
    }

    #[test]
    fn use_trees_flatten_with_aliases_and_groups() {
        let t =
            tree_of("use silcfm_types::{FxHashMap, scheme::{MemoryScheme as MS, SchemeStats}};");
        let ItemKind::Use { imports } = &t.items[0].kind else {
            panic!("not a use")
        };
        let got: Vec<(String, String)> = imports
            .iter()
            .map(|u| (u.alias.clone(), u.path.join("::")))
            .collect();
        assert!(
            got.contains(&("FxHashMap".into(), "silcfm_types::FxHashMap".into())),
            "{got:?}"
        );
        assert!(
            got.contains(&("MS".into(), "silcfm_types::scheme::MemoryScheme".into())),
            "{got:?}"
        );
        assert!(
            got.contains(&(
                "SchemeStats".into(),
                "silcfm_types::scheme::SchemeStats".into()
            )),
            "{got:?}"
        );
    }

    #[test]
    fn nested_fns_and_cfg_test_mods() {
        let t = tree_of(
            "fn outer() { let x = 1; fn inner() {} { let y = 2; } }\n\
             #[cfg(test)]\nmod tests { fn t() {} }\n",
        );
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        assert_eq!(names(&t.items[0].children), vec!["inner"]);
        assert!(t.items[1].cfg_test);
        assert!(!t.items[0].cfg_test);
    }

    #[test]
    fn bodiless_trait_fns_and_where_clauses() {
        let t = tree_of(
            "trait Feed { fn next(&mut self) -> Option<u8>; fn batch(&mut self) -> u8 { 0 } }\n\
             fn generic<F>(f: F) -> u8 where F: Fn(u8) -> u8 { f(1) }\n",
        );
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        let trait_kids = &t.items[0].children;
        assert_eq!(names(trait_kids), vec!["next", "batch"]);
        let ItemKind::Fn { body, .. } = &trait_kids[0].kind else {
            panic!()
        };
        assert!(body.is_none());
        let ItemKind::Fn { body, .. } = &t.items[1].kind else {
            panic!()
        };
        assert!(body.is_some());
    }

    #[test]
    fn expression_braces_do_not_spawn_items() {
        // `match`, struct literals and closures inside bodies must not be
        // mistaken for items even when arms mention item keywords as paths.
        let t = tree_of(
            "fn f(k: Kind) -> u8 { match k { Kind::Fn => 1, Kind::Struct { n } => n, _ => 0 } }",
        );
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        assert!(t.items[0].children.is_empty());
    }

    #[test]
    fn spans_are_well_nested() {
        let src = "mod a { fn f() { fn g() {} } mod b { struct S; } }\nfn top() {}";
        let t = tree_of(src);
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        check_nesting(&t.items, None).expect("nesting");
    }

    #[test]
    fn pretty_roundtrip_is_span_stable() {
        let src = r##"
use a::{b, c as d};
const MSG: &str = "has \"quotes\" and \\ slashes";
struct S { name: &'static str, ch: char }
impl S { fn probe(&self, i: usize) -> char { let _ = 'x'; '\n' } }
fn raw() -> &'static str { r#"raw "content" here"# }
"##;
        let t = tree_of(src);
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        let lexed = lex(src);
        let printed = pretty(&t, &lexed.tokens);
        let relexed = lex(&printed);
        let reparsed = parse(&relexed);
        assert!(reparsed.errors.is_empty(), "{:?}", reparsed.errors);
        assert!(
            span_stable_eq(&t.items, &reparsed.items),
            "\noriginal: {:#?}\nreparsed: {:#?}",
            t.items,
            reparsed.items
        );
    }
}
