//! The incremental lint cache: skip the whole analysis when nothing that
//! could change its outcome has changed.
//!
//! Because the analyzer is *cross-file* (a one-line edit in `util.rs` can
//! add or remove findings in `controller.rs` via the call graph), per-file
//! result caching is unsound. The cache therefore keys on a single
//! whole-workspace fingerprint — every scanned source, manifest and the
//! stat-key registry, content-hashed, plus a digest of the rule
//! configuration — and replays the full stored report on a hit. A miss
//! re-analyzes everything and rewrites the cache.
//!
//! The stored per-file hashes also power `--changed-only`: after a full
//! (or replayed) analysis, findings are filtered to files whose content
//! hash differs from the *previous* run's, which is exactly the "what did
//! my edit break" view. Filtering happens after analysis, so cross-file
//! findings caused by an edit elsewhere still surface on the changed file.
//!
//! Format: a line-oriented text file (`target/silcfm-lint-cache.txt`) with
//! tab-separated fields and `\t`/`\n`/`\\` escaping — dependency-free and
//! diffable. An unreadable or version-mismatched cache is simply a miss.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::{Finding, LintReport};

/// Bump when the cache format or anything feeding the fingerprint changes
/// shape.
const VERSION: &str = "silcfm-lint-cache v2";

/// FNV-1a 64-bit: tiny, dependency-free, stable across platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of everything configuration-side that affects findings: rule
/// set, seeds, boundaries, sinks, scopes. Editing any of these invalidates
/// the cache even if no source changed.
pub fn config_digest() -> u64 {
    let blob = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        crate::rules::RULE_IDS,
        crate::HOT_PATH_SEEDS,
        crate::AMORTIZED_BOUNDARIES,
        crate::ORDER_SINK_FNS,
        crate::ORDER_SINK_FILES,
        crate::PARALLEL_SEED_PREFIXES,
        crate::MERGE_FN_MARKERS,
        crate::SANCTIONED_CONCURRENCY,
    );
    fnv1a(blob.as_bytes())
}

/// A cached run: the input fingerprint, the per-file content hashes that
/// produced it, and the full report to replay.
#[derive(Debug, Default)]
pub struct Cache {
    pub fingerprint: u64,
    pub file_hashes: BTreeMap<String, u64>,
    pub report: LintReport,
}

/// Combines per-file hashes (path-ordered, so deterministic) with the
/// config digest into the workspace fingerprint.
pub fn fingerprint(file_hashes: &BTreeMap<String, u64>) -> u64 {
    let mut blob = String::new();
    for (path, hash) in file_hashes {
        blob.push_str(path);
        blob.push('\u{1}');
        blob.push_str(&format!("{hash:016x}"));
        blob.push('\n');
    }
    blob.push_str(&format!("config:{:016x}", config_digest()));
    fnv1a(blob.as_bytes())
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Serializes a cache to its text form.
pub fn encode(cache: &Cache) -> String {
    let mut out = String::new();
    out.push_str(VERSION);
    out.push('\n');
    out.push_str(&format!("fingerprint {:016x}\n", cache.fingerprint));
    out.push_str(&format!("files {}\n", cache.file_hashes.len()));
    for (path, hash) in &cache.file_hashes {
        out.push_str(&format!("{hash:016x}\t{}\n", escape(path)));
    }
    let r = &cache.report;
    out.push_str(&format!(
        "report {} {} {}\n",
        r.findings.len(),
        r.suppressed,
        r.files_scanned
    ));
    for f in &r.findings {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            f.rule,
            escape(&f.path),
            f.line,
            escape(&f.message),
            escape(&f.hint),
            escape(&f.chain.join("\u{1f}")),
        ));
    }
    out
}

/// Parses the text form back; `None` on any malformation (treated as a
/// cache miss by callers).
pub fn decode(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    if lines.next()? != VERSION {
        return None;
    }
    let fingerprint = u64::from_str_radix(lines.next()?.strip_prefix("fingerprint ")?, 16).ok()?;
    let nfiles: usize = lines.next()?.strip_prefix("files ")?.parse().ok()?;
    let mut file_hashes = BTreeMap::new();
    for _ in 0..nfiles {
        let line = lines.next()?;
        let (hash, path) = line.split_once('\t')?;
        file_hashes.insert(unescape(path), u64::from_str_radix(hash, 16).ok()?);
    }
    let mut header = lines.next()?.strip_prefix("report ")?.split(' ');
    let nfindings: usize = header.next()?.parse().ok()?;
    let suppressed: usize = header.next()?.parse().ok()?;
    let files_scanned: usize = header.next()?.parse().ok()?;
    let mut findings = Vec::with_capacity(nfindings);
    for _ in 0..nfindings {
        let fields: Vec<&str> = lines.next()?.splitn(6, '\t').collect();
        if fields.len() != 6 {
            return None;
        }
        let chain_raw = unescape(fields[5]);
        findings.push(Finding {
            // Rule IDs are interned: map back to the static registry so
            // `Finding.rule` stays `&'static str`.
            rule: crate::rules::RULE_IDS.iter().find(|r| **r == fields[0])?,
            path: unescape(fields[1]),
            line: fields[2].parse().ok()?,
            message: unescape(fields[3]),
            hint: unescape(fields[4]),
            chain: if chain_raw.is_empty() {
                Vec::new()
            } else {
                chain_raw.split('\u{1f}').map(str::to_string).collect()
            },
        });
    }
    Some(Cache {
        fingerprint,
        file_hashes,
        report: LintReport {
            findings,
            suppressed,
            files_scanned,
        },
    })
}

/// Loads a cache file; any IO or parse failure is a miss.
pub fn load(path: &Path) -> Option<Cache> {
    decode(&fs::read_to_string(path).ok()?)
}

/// Writes the cache, creating the parent directory if needed.
pub fn store(path: &Path, cache: &Cache) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, encode(cache))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cache {
        let mut file_hashes = BTreeMap::new();
        file_hashes.insert("crates/core/src/lib.rs".to_string(), 7);
        file_hashes.insert("weird\tname.rs".to_string(), 9);
        Cache {
            fingerprint: fingerprint(&file_hashes),
            file_hashes,
            report: LintReport {
                findings: vec![Finding {
                    rule: "A1",
                    path: "crates/core/src/util.rs".to_string(),
                    line: 12,
                    message: "`vec!` with a\ttab and\nnewline".to_string(),
                    hint: "hoist it".to_string(),
                    chain: vec![
                        "C::access (crates/core/src/controller.rs:4)".to_string(),
                        "expand (crates/core/src/util.rs:1)".to_string(),
                    ],
                }],
                suppressed: 3,
                files_scanned: 41,
            },
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let cache = sample();
        let decoded = decode(&encode(&cache)).expect("decode");
        assert_eq!(decoded.fingerprint, cache.fingerprint);
        assert_eq!(decoded.file_hashes, cache.file_hashes);
        assert_eq!(decoded.report.findings, cache.report.findings);
        assert_eq!(decoded.report.suppressed, 3);
        assert_eq!(decoded.report.files_scanned, 41);
    }

    #[test]
    fn version_or_garbage_is_a_miss() {
        assert!(decode("").is_none());
        assert!(decode("silcfm-lint-cache v0\n").is_none());
        let mut text = encode(&sample());
        text.truncate(text.len() / 2);
        assert!(decode(&text).is_none());
    }

    #[test]
    fn fingerprint_tracks_content_and_config() {
        let mut hashes = BTreeMap::new();
        hashes.insert("a.rs".to_string(), 1u64);
        let base = fingerprint(&hashes);
        hashes.insert("a.rs".to_string(), 2u64);
        assert_ne!(base, fingerprint(&hashes), "content hash feeds in");
        hashes.insert("b.rs".to_string(), 1u64);
        let with_b = fingerprint(&hashes);
        assert_ne!(fingerprint(&hashes), base);
        hashes.remove("b.rs");
        hashes.insert("a.rs".to_string(), 1u64);
        assert_eq!(fingerprint(&hashes), base, "deterministic");
        let _ = with_b;
    }
}
