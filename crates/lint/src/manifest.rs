//! H1: hermeticity of `Cargo.toml` manifests.
//!
//! The workspace builds fully offline; the only dependencies any manifest
//! may declare are workspace-internal path dependencies. This module
//! line-parses each manifest (the workspace's manifests are deliberately
//! simple TOML — no multi-line inline tables) and flags every entry in a
//! dependency section that is not one of:
//!
//! * `name.workspace = true`
//! * `name = { workspace = true, ... }`
//! * `name = { path = "...", ... }`  (and, under `[workspace.dependencies]`,
//!   the `path` form is *required*)
//!
//! Suppression uses the same directive syntax as Rust sources, in a TOML
//! comment: `# silcfm-lint: allow(H1) -- reason`.

use crate::directives::{self};
use crate::lexer::Comment;
use crate::Finding;

/// Sections whose entries are dependency declarations.
const DEP_SECTIONS: &[&str] = &[
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

/// Lints one manifest. `path` labels findings; returns raw findings plus
/// parsed allow directives (applied by the caller alongside source rules).
pub fn lint_manifest(path: &str, source: &str) -> (Vec<Finding>, Vec<directives::Allow>) {
    let mut findings = Vec::new();

    // TOML comments, for directive parsing.
    let comments: Vec<Comment> = source
        .lines()
        .enumerate()
        .filter_map(|(idx, l)| {
            l.find('#').map(|at| Comment {
                line: idx + 1,
                end_line: idx + 1,
                text: l[at + 1..].to_string(),
            })
        })
        .collect();
    let allows = directives::parse(path, &comments, &mut findings);

    let mut section = String::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_toml_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.trim_end_matches(']').trim_matches('"').to_string();
            // `[dependencies.foo]` declares the dependency `foo` as a
            // section; treat the header itself as the entry to check. The
            // workspace's style is inline entries, so just flag the form.
            if let Some((base, dep)) = header.rsplit_once('.') {
                if DEP_SECTIONS.contains(&base) && base != "workspace" {
                    findings.push(non_path_dep(path, line_no, dep));
                    section.clear();
                    continue;
                }
            }
            section = header;
            continue;
        }
        if !DEP_SECTIONS.contains(&section.as_str()) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        let name = key.strip_suffix(".workspace").unwrap_or(key);
        let inherits_workspace = key.ends_with(".workspace") && value == "true";
        let inline_ok = value.starts_with('{')
            && (value.contains("workspace = true") || value.contains("path = \""));
        let needs_explicit_path = section == "workspace.dependencies";
        let ok = if needs_explicit_path {
            value.starts_with('{') && value.contains("path = \"")
        } else {
            inherits_workspace || inline_ok
        };
        if !ok {
            findings.push(non_path_dep(path, line_no, name));
        }
    }

    (findings, allows)
}

fn non_path_dep(path: &str, line: usize, name: &str) -> Finding {
    Finding {
        rule: "H1",
        path: path.to_string(),
        line,
        message: format!(
            "dependency `{name}` is not a workspace-internal path dependency; the build \
             must work with no registry access"
        ),
        hint: "vendor the functionality in-tree (see silcfm-types::rng/check for the \
               pattern) or declare `name = { path = \"crates/...\" }`"
            .to_string(),
        chain: Vec::new(),
    }
}

/// Removes a trailing TOML comment, respecting `#` inside quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directives::apply;

    fn lint(src: &str) -> Vec<(usize, String)> {
        let (findings, allows) = lint_manifest("Cargo.toml", src);
        let (kept, _) = apply(findings, &allows);
        kept.into_iter().map(|f| (f.line, f.message)).collect()
    }

    #[test]
    fn workspace_and_path_deps_pass() {
        let src = "[package]\nname = \"x\"\n\n[dependencies]\n\
                   silcfm-types.workspace = true\n\
                   silcfm-core = { workspace = true }\n\
                   local = { path = \"crates/local\" }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn registry_deps_fail() {
        let src = "[dependencies]\nserde = \"1.0\"\n";
        let hits = lint(src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 2);
        assert!(hits[0].1.contains("serde"));
    }

    #[test]
    fn inline_version_without_path_fails() {
        let src = "[dev-dependencies]\nrand = { version = \"0.8\", features = [\"std\"] }\n";
        assert_eq!(lint(src).len(), 1);
    }

    #[test]
    fn workspace_dependencies_require_a_path() {
        let good = "[workspace.dependencies]\nsilcfm-types = { path = \"crates/types\" }\n";
        assert!(lint(good).is_empty());
        let bad = "[workspace.dependencies]\nserde = { version = \"1\" }\n";
        assert_eq!(lint(bad).len(), 1);
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let src = "[package]\nversion = \"0.1.0\"\n[features]\ndefault = []\n\
                   [profile.release]\nlto = \"thin\"\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn section_form_dependency_is_flagged() {
        let src = "[dependencies.serde]\nversion = \"1\"\n";
        assert_eq!(lint(src).len(), 1);
    }

    #[test]
    fn toml_directive_suppresses() {
        let src = "[dependencies]\n\
                   # silcfm-lint: allow(H1) -- fixture demonstrating suppression\n\
                   serde = \"1.0\"\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn empty_dep_section_passes() {
        assert!(lint("[dependencies]\n").is_empty());
    }
}
