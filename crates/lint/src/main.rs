//! The `silcfm-lint` binary.
//!
//! ```text
//! cargo run -p silcfm-lint                  # lint the workspace, human output
//! cargo run -p silcfm-lint -- --json        # machine-readable findings
//! cargo run -p silcfm-lint -- --fix-hints
//! cargo run -p silcfm-lint -- --explain A1  # why a rule exists, how to fix
//! cargo run -p silcfm-lint -- --changed-only # findings in files changed
//!                                            # since the last cached run
//! cargo run -p silcfm-lint -- --no-cache    # force a full analysis
//! cargo run -p silcfm-lint -- <root>        # lint a different tree
//! ```
//!
//! Results are cached in `target/silcfm-lint-cache.txt`, keyed by a
//! fingerprint over every input file plus the analyzer configuration; the
//! analysis is cross-file, so any input change invalidates the whole report
//! (per-file reuse would be unsound — see `cache`).
//!
//! Exit code is nonzero iff any unsuppressed finding (or an I/O error)
//! remains — CI wires this before the build, where it is cheapest.

use std::path::PathBuf;
use std::process::ExitCode;

use silcfm_lint::cache;

fn main() -> ExitCode {
    let mut json = false;
    let mut fix_hints = false;
    let mut no_cache = false;
    let mut changed_only = false;
    let mut explain: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fix-hints" => fix_hints = true,
            "--no-cache" => no_cache = true,
            "--changed-only" => changed_only = true,
            "--explain" => {
                let Some(rule) = args.next() else {
                    eprintln!("silcfm-lint: --explain needs a rule ID (e.g. --explain A1)");
                    return ExitCode::from(2);
                };
                explain = Some(rule);
            }
            "--help" | "-h" => {
                println!(
                    "usage: silcfm-lint [--json] [--fix-hints] [--no-cache] \
                     [--changed-only] [--explain RULE] [root]"
                );
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("silcfm-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(rule) = explain {
        let rule = rule.to_uppercase();
        return match silcfm_lint::rules::explain(&rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "silcfm-lint: unknown rule `{rule}` (rules: {})",
                    silcfm_lint::rules::RULE_IDS.join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    // Default to the workspace containing this crate: compile-time constant,
    // so the binary behaves identically regardless of invocation directory.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let hashes = match silcfm_lint::input_hashes(&root) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("silcfm-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let fingerprint = cache::fingerprint(&hashes);
    let cache_path = root.join("target").join("silcfm-lint-cache.txt");
    let previous = cache::load(&cache_path);
    let prev_hashes = previous.as_ref().map(|c| c.file_hashes.clone());

    let mut report = match previous.filter(|c| !no_cache && c.fingerprint == fingerprint) {
        Some(hit) => hit.report,
        None => {
            let report = match silcfm_lint::lint_workspace(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("silcfm-lint: failed to scan {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            if no_cache {
                report
            } else {
                let entry = cache::Cache {
                    fingerprint,
                    file_hashes: hashes.clone(),
                    report,
                };
                if let Err(e) = cache::store(&cache_path, &entry) {
                    eprintln!(
                        "silcfm-lint: could not write cache {}: {e}",
                        cache_path.display()
                    );
                }
                entry.report
            }
        }
    };

    if changed_only {
        // The analysis is always whole-workspace (a change anywhere can add
        // or remove interprocedural findings elsewhere); this only filters
        // the *display* to files whose bytes differ from the previous run.
        let prev = prev_hashes.unwrap_or_default();
        report
            .findings
            .retain(|f| hashes.get(&f.path) != prev.get(&f.path));
    }

    if json {
        println!("{}", silcfm_lint::report::json(&report));
    } else {
        print!("{}", silcfm_lint::report::text(&report, fix_hints));
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
