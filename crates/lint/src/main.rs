//! The `silcfm-lint` binary.
//!
//! ```text
//! cargo run -p silcfm-lint               # lint the workspace, human output
//! cargo run -p silcfm-lint -- --json     # machine-readable findings
//! cargo run -p silcfm-lint -- --fix-hints
//! cargo run -p silcfm-lint -- <root>     # lint a different tree
//! ```
//!
//! Exit code is nonzero iff any unsuppressed finding (or an I/O error)
//! remains — CI wires this before the build, where it is cheapest.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut fix_hints = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--fix-hints" => fix_hints = true,
            "--help" | "-h" => {
                println!("usage: silcfm-lint [--json] [--fix-hints] [root]");
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("silcfm-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace containing this crate: compile-time constant,
    // so the binary behaves identically regardless of invocation directory.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let report = match silcfm_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("silcfm-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", silcfm_lint::report::json(&report));
    } else {
        print!("{}", silcfm_lint::report::text(&report, fix_hints));
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
