//! Interprocedural rule passes over the workspace call graph.
//!
//! Where [`crate::rules`] pattern-matches tokens file by file, this module
//! works on the [`crate::symbols::Workspace`] + [`crate::callgraph`] pair:
//!
//! * **P1 / A1** — panic- and allocation-freedom of the access hot path.
//!   The hot set is no longer a hand-maintained module list: it is the
//!   transitive closure of the declared seeds ([`crate::HOT_PATH_SEEDS`])
//!   over resolved call edges, minus declared amortization boundaries
//!   ([`crate::AMORTIZED_BOUNDARIES`]). Findings carry the full call chain
//!   from a seed to the offending function.
//! * **N1** — iteration over a hash-ordered container (`FxHashMap`,
//!   `FxHashSet`, std `HashMap`/`HashSet`) inside any function that can
//!   reach an order-sensitive sink (stat merges, digests, journal encoding,
//!   exporters) without sorting first. Hash iteration order is
//!   seed/platform-dependent; letting it leak into merged stats or emitted
//!   bytes breaks bit-reproducibility.
//! * **F1** — unordered float reductions (`.sum()`, `.product()`,
//!   `.fold()`) inside merge/aggregation functions reachable from the
//!   sharded or parallel-grid entry points. Float addition does not
//!   associate, so a reduction whose operand order is not pinned can
//!   differ between serial and sharded runs.
//!
//! All passes skip `#[cfg(test)]` functions and files under
//! `tests/`/`examples/`/`benches/`: the contracts bind shipped simulator
//! code, not its test rigs. What the call-graph builder cannot resolve it
//! drops, so these rules under-approximate; the fixture suite pins the
//! idioms that must keep resolving.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::callgraph::{self, CallGraph, Reach, ReachesSink};
use crate::lexer::{Token, TokenKind};
use crate::rules::is_keyword;
use crate::symbols::{FnId, Owner, Workspace};
use crate::Finding;

/// A declaration of where the access hot path *starts*. Matching is
/// textual (trait/type names as written at the impl site), so fixture
/// workspaces and impls of foreign traits seed exactly like the real tree.
#[derive(Debug, Clone, Copy)]
pub enum Seed {
    /// Every impl of `trait_name` (plus the trait's own default bodies):
    /// the named methods.
    TraitMethods {
        trait_name: &'static str,
        methods: &'static [&'static str],
    },
    /// The named inherent/impl methods of every type called `ty`.
    TypeMethods {
        ty: &'static str,
        methods: &'static [&'static str],
    },
    /// Every method of types called `ty` whose name starts with `prefix`.
    TypeMethodPrefix {
        ty: &'static str,
        prefix: &'static str,
    },
}

/// Container types whose iteration order is hash-dependent.
const HASH_ORDERED_TYPES: &[&str] = &["FxHashMap", "FxHashSet", "HashMap", "HashSet"];

/// Methods that yield a hash-ordered iteration when called on one of the
/// above.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Consumers whose result does not depend on operand order (over exact
/// types — floats void the exemption).
const ORDER_INSENSITIVE_CONSUMERS: &[&str] = &["sum", "count", "min", "max", "all", "any"];

/// Float reduction methods F1 looks for.
const FLOAT_REDUCERS: &[&str] = &["sum", "product", "fold"];

/// Runs every graph-based pass over a built workspace. `check_config`
/// additionally audits the analyzer's own configuration (stale
/// [`crate::AMORTIZED_BOUNDARIES`] entries become X1); that only makes
/// sense when linting the full tree, not a fixture subset.
pub fn lint_graph(ws: &Workspace, check_config: bool) -> Vec<Finding> {
    let graph = callgraph::build(ws);
    let mut findings = Vec::new();
    hot_path_pass(ws, &graph, check_config, &mut findings);
    order_taint_pass(ws, &graph, &mut findings);
    float_merge_pass(ws, &graph, &mut findings);
    findings
}

/// Resolves the declared seeds to concrete fns. Test-gated fns and fns in
/// test/example/bench files never seed.
pub fn seed_fns(ws: &Workspace, seeds: &[Seed]) -> Vec<FnId> {
    let mut out = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.cfg_test || ws.files[f.file].is_test_file || f.body.is_none() {
            continue;
        }
        let owner_type_name = match f.owner {
            Owner::Type(t) => Some(ws.types[t.0].name.as_str()),
            _ => None,
        };
        let default_of = match f.owner {
            Owner::TraitDefault(tr) => Some(ws.traits[tr.0].name.as_str()),
            _ => None,
        };
        let hit = seeds.iter().any(|seed| match seed {
            Seed::TraitMethods {
                trait_name,
                methods,
            } => {
                methods.contains(&f.name.as_str())
                    && (f.impl_trait.as_deref() == Some(trait_name)
                        || default_of == Some(trait_name))
            }
            Seed::TypeMethods { ty, methods } => {
                owner_type_name == Some(ty) && methods.contains(&f.name.as_str())
            }
            Seed::TypeMethodPrefix { ty, prefix } => {
                owner_type_name == Some(ty) && f.name.starts_with(prefix)
            }
        });
        if hit {
            out.push(FnId(i));
        }
    }
    out
}

/// Resolves `(qualified name, justification)` amortization boundaries to
/// fn ids. An entry matching nothing is reported as an X1 config error so
/// the list cannot rot silently.
pub fn boundary_fns(
    ws: &Workspace,
    boundaries: &[(&str, &str)],
    report_stale: bool,
    findings: &mut Vec<Finding>,
) -> Vec<FnId> {
    let mut out = Vec::new();
    for (qualified, _why) in boundaries {
        let matches: Vec<FnId> = (0..ws.fns.len())
            .map(FnId)
            .filter(|&id| ws.qualified_name(id) == *qualified)
            .collect();
        if matches.is_empty() && report_stale {
            findings.push(Finding {
                rule: "X1",
                path: "crates/lint/src/lib.rs".to_string(),
                line: 1,
                message: format!(
                    "AMORTIZED_BOUNDARIES entry `{qualified}` matches no workspace fn"
                ),
                hint: "remove the stale boundary or fix the qualified name".to_string(),
                chain: Vec::new(),
            });
        }
        out.extend(matches);
    }
    out
}

/// The derived hot set as `(file path, fn name)` pairs: everything
/// reachable from the declared seeds, minus amortization boundaries. This
/// is the scope that replaced the old hand-maintained module/seed lists;
/// it is exposed so integration tests can audit its coverage against
/// historical baselines.
pub fn derived_hot_set(ws: &Workspace) -> std::collections::BTreeSet<(String, String)> {
    let graph = callgraph::build(ws);
    let seeds = seed_fns(ws, crate::HOT_PATH_SEEDS);
    let stops = boundary_fns(ws, crate::AMORTIZED_BOUNDARIES, false, &mut Vec::new());
    let reach = Reach::compute(ws, &graph, &seeds, &stops);
    (0..ws.fns.len())
        .map(FnId)
        .filter(|id| reach.reached[id.0])
        .map(|id| {
            (
                ws.files[ws.fns[id.0].file].path.clone(),
                ws.fns[id.0].name.clone(),
            )
        })
        .collect()
}

/// Whether a fn's body should be scanned for sinks: shipped, non-test code.
fn scannable(ws: &Workspace, f: FnId) -> bool {
    let sym = &ws.fns[f.0];
    sym.body.is_some() && !sym.cfg_test && !ws.files[sym.file].is_test_file
}

fn body_tokens(ws: &Workspace, f: FnId) -> (&[Token], Range<usize>) {
    let sym = &ws.fns[f.0];
    (
        &ws.files[sym.file].lexed.tokens,
        sym.body.clone().unwrap_or(0..0),
    )
}

// ---- P1 / A1: hot-path panic and allocation freedom ------------------------

fn hot_path_pass(
    ws: &Workspace,
    graph: &CallGraph,
    check_config: bool,
    findings: &mut Vec<Finding>,
) {
    let seeds = seed_fns(ws, crate::HOT_PATH_SEEDS);
    let stops = boundary_fns(ws, crate::AMORTIZED_BOUNDARIES, check_config, findings);
    let reach = Reach::compute(ws, graph, &seeds, &stops);

    let p1_hint = "restructure infallibly (`get`, `if let`, accessor with a documented \
                   invariant) or annotate why the panic cannot fire";
    let a1_hint = "keep per-access work allocation-free: reuse caller-owned buffers \
                   (see the outcome-reuse protocol) or hoist the allocation to setup";

    for id in (0..ws.fns.len()).map(FnId) {
        if !reach.reached[id.0] || !scannable(ws, id) {
            continue;
        }
        let (toks, body) = body_tokens(ws, id);
        let sym = &ws.fns[id.0];
        let chain = reach.chain(ws, id);
        for (line, what) in panic_sites(toks, body.clone()) {
            findings.push(Finding {
                rule: "P1",
                path: ws.files[sym.file].path.clone(),
                line,
                message: format!(
                    "{what} in `{}`, which is on the access hot path",
                    ws.qualified_name(id)
                ),
                hint: p1_hint.to_string(),
                chain: chain.clone(),
            });
        }
        for (line, what) in alloc_sites(toks, body.clone()) {
            findings.push(Finding {
                rule: "A1",
                path: ws.files[sym.file].path.clone(),
                line,
                message: format!(
                    "`{what}` in `{}`, which is on the access hot path",
                    ws.qualified_name(id)
                ),
                hint: a1_hint.to_string(),
                chain: chain.clone(),
            });
        }
    }
}

/// Panic-capable sites in a body: `.unwrap()`, `.expect(`, `panic!`, bare
/// `[...]` indexing after a value token.
fn panic_sites(toks: &[Token], body: Range<usize>) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for i in body.clone() {
        let Some(t) = toks.get(i) else { break };
        if punct(Some(t), '.') {
            if let Some(name) = toks.get(i + 1) {
                if name.kind == TokenKind::Ident
                    && (name.text == "unwrap" || name.text == "expect")
                    && punct(toks.get(i + 2), '(')
                {
                    out.push((name.line, format!("`.{}(`", name.text)));
                }
            }
        }
        if t.kind == TokenKind::Ident && t.text == "panic" && punct(toks.get(i + 1), '!') {
            out.push((t.line, "`panic!`".to_string()));
        }
        // Bare `[...]` indexing: a `[` whose previous token is a value
        // (identifier, `)` or `]`). Type positions, attributes, slice
        // patterns and macro brackets all have non-value predecessors.
        if punct(Some(t), '[') && i > body.start {
            let prev = &toks[i - 1];
            let value_before = match prev.kind {
                TokenKind::Ident => !is_keyword(&prev.text),
                TokenKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if value_before {
                out.push((t.line, "bare `[...]` indexing".to_string()));
            }
        }
    }
    out
}

/// Allocation sites in a body: `Vec::new`, `Box::new`, `vec!`, `format!`,
/// `.to_vec()`.
fn alloc_sites(toks: &[Token], body: Range<usize>) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for j in body.clone() {
        let Some(t) = toks.get(j) else { break };
        if t.kind == TokenKind::Ident
            && (t.text == "Vec" || t.text == "Box")
            && punct(toks.get(j + 1), ':')
            && punct(toks.get(j + 2), ':')
            && ident(toks.get(j + 3), "new")
        {
            out.push((t.line, format!("{}::new", t.text)));
        }
        if t.kind == TokenKind::Ident
            && (t.text == "vec" || t.text == "format")
            && punct(toks.get(j + 1), '!')
        {
            out.push((t.line, format!("{}!", t.text)));
        }
        if punct(Some(t), '.') && ident(toks.get(j + 1), "to_vec") && punct(toks.get(j + 2), '(') {
            out.push((t.line, ".to_vec()".to_string()));
        }
    }
    out
}

// ---- N1: hash-iteration order taint ----------------------------------------

fn order_taint_pass(ws: &Workspace, graph: &CallGraph, findings: &mut Vec<Finding>) {
    // Sinks: merge/digest-named fns plus everything in the declared
    // serialization files (journal encoding, exporters).
    let sinks: Vec<FnId> = (0..ws.fns.len())
        .map(FnId)
        .filter(|&id| {
            let f = &ws.fns[id.0];
            if f.cfg_test || ws.files[f.file].is_test_file {
                return false;
            }
            crate::ORDER_SINK_FNS.contains(&f.name.as_str())
                || crate::ORDER_SINK_FILES.contains(&ws.files[f.file].path.as_str())
        })
        .collect();
    let reach = ReachesSink::compute(ws, graph, &sinks);

    for id in (0..ws.fns.len()).map(FnId) {
        if !reach.reaches[id.0] || !scannable(ws, id) {
            continue;
        }
        let path = ws.files[ws.fns[id.0].file].path.clone();
        if !crate::rules::determinism_scope(&path) {
            continue;
        }
        let locals = callgraph::local_types(ws, id);
        let (toks, body) = body_tokens(ws, id);
        let chain = reach.chain(ws, id);
        for site in hash_iteration_sites(ws, id, &locals, toks, body) {
            findings.push(Finding {
                rule: "N1",
                path: path.clone(),
                line: site.line,
                message: format!(
                    "iteration over hash-ordered `{}` in `{}` feeds an order-sensitive \
                     sink without an intervening sort",
                    site.ty,
                    ws.qualified_name(id)
                ),
                hint: "collect and sort the keys first, or keep the data in a `Vec`/`BTreeMap`; \
                       hash iteration order is seed- and platform-dependent"
                    .to_string(),
                chain: chain.clone(),
            });
        }
    }
}

struct IterSite {
    line: usize,
    ty: String,
}

/// Hash-ordered iteration sites in a body: `recv.iter()`-style method
/// calls and bare `for x in &recv` loops, where `recv`'s *declared* base
/// type is a hash container. A later `sort*` call in the same body, or
/// order-insensitive consumption in the same statement (over non-floats),
/// exempts a site.
fn hash_iteration_sites(
    ws: &Workspace,
    f: FnId,
    locals: &BTreeMap<String, String>,
    toks: &[Token],
    body: Range<usize>,
) -> Vec<IterSite> {
    let mut out = Vec::new();
    for i in body.clone() {
        let Some(t) = toks.get(i) else { break };
        // `recv . m (` with m a hash-iteration method.
        if t.kind == TokenKind::Ident
            && HASH_ITER_METHODS.contains(&t.text.as_str())
            && punct(toks.get(i + 1), '(')
            && i > body.start
            && punct(toks.get(i - 1), '.')
        {
            if let Some(ty) = recv_type_text(ws, f, locals, toks, i - 1, body.start) {
                if HASH_ORDERED_TYPES.contains(&ty.as_str())
                    && !sorted_later(toks, i, body.end)
                    && !consumed_order_insensitively(toks, i, body.end)
                {
                    out.push(IterSite { line: t.line, ty });
                }
            }
        }
        // `for pat in [&][mut] recv {` — direct IntoIterator use.
        if t.kind == TokenKind::Ident && t.text == "in" && in_belongs_to_for(toks, i, body.start) {
            let mut j = i + 1;
            while punct(toks.get(j), '&') || ident(toks.get(j), "mut") {
                j += 1;
            }
            if let Some((segs, end)) = recv_chain_forward(toks, j, body.end) {
                // A trailing `(` means the chain ends in a call — covered
                // (or deliberately not) by the method-site scan above.
                if !punct(toks.get(end), '(') && !punct(toks.get(end), '.') {
                    if let Some(ty) = chain_type_text(ws, f, locals, &segs) {
                        if HASH_ORDERED_TYPES.contains(&ty.as_str())
                            && !sorted_later(toks, i, body.end)
                        {
                            out.push(IterSite {
                                line: toks[i].line,
                                ty,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Whether the `in` at `i` is a `for … in` loop header (an ident `for`
/// appears earlier with only pattern tokens in between).
fn in_belongs_to_for(toks: &[Token], i: usize, start: usize) -> bool {
    let mut j = i;
    let mut depth = 0i32;
    while j > start {
        j -= 1;
        let t = &toks[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => {
                    depth -= 1;
                    if depth < 0 {
                        return false; // left the enclosing expression
                    }
                }
                ";" if depth == 0 => return false,
                _ => {}
            }
        }
        if depth == 0 && t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "for" => return true,
                // Pattern-position tokens keep scanning; anything else
                // (an expression) means this `in` is not a loop header.
                "mut" | "ref" | "_" => {}
                name if !is_keyword(name) => {}
                _ => return false,
            }
        }
    }
    false
}

/// Parses `ident (. ident)*` forward from `j`; returns the segments and
/// the index just past the chain.
fn recv_chain_forward(toks: &[Token], j: usize, end: usize) -> Option<(Vec<String>, usize)> {
    let mut segs = Vec::new();
    let mut k = j;
    let first = toks.get(k)?;
    if first.kind != TokenKind::Ident || (is_keyword(&first.text) && first.text != "self") {
        return None;
    }
    segs.push(first.text.clone());
    k += 1;
    while k + 1 < end && punct(toks.get(k), '.') {
        let Some(seg) = toks.get(k + 1) else { break };
        if seg.kind != TokenKind::Ident {
            break;
        }
        // Stop before a method call: `a.b.iter()` ends the *field* chain
        // at `b`; the `iter(` is the method-site scan's business.
        if punct(toks.get(k + 2), '(') {
            break;
        }
        segs.push(seg.text.clone());
        k += 2;
    }
    Some((segs, k))
}

/// Declared base type of the receiver ending at the `.` at `dot`
/// (backward walk: `self.field`, `local`, `local` being a typed param).
fn recv_type_text(
    ws: &Workspace,
    f: FnId,
    locals: &BTreeMap<String, String>,
    toks: &[Token],
    dot: usize,
    start: usize,
) -> Option<String> {
    let name_idx = dot.checked_sub(1)?;
    let name = toks.get(name_idx)?;
    if name.kind != TokenKind::Ident {
        return None;
    }
    if name_idx > start + 1
        && punct(toks.get(name_idx - 1), '.')
        && ident(toks.get(name_idx - 2), "self")
    {
        return callgraph::self_field_type(ws, f, &name.text);
    }
    if name_idx > start && punct(toks.get(name_idx - 1), '.') {
        return None; // deeper chains: unresolvable, under-approximate
    }
    locals.get(name.text.as_str()).cloned()
}

fn chain_type_text(
    ws: &Workspace,
    f: FnId,
    locals: &BTreeMap<String, String>,
    segs: &[String],
) -> Option<String> {
    match segs {
        [one] if one != "self" => locals.get(one.as_str()).cloned(),
        [one, field] if one == "self" => callgraph::self_field_type(ws, f, field),
        _ => None,
    }
}

/// Whether any `sort*` call appears after `i` in the body — the caller
/// ordered the collected data before it can reach a sink.
fn sorted_later(toks: &[Token], i: usize, end: usize) -> bool {
    ((i + 1)..end).any(|j| {
        toks.get(j).is_some_and(|t| {
            t.kind == TokenKind::Ident && t.text.starts_with("sort") && punct(toks.get(j + 1), '(')
        })
    })
}

/// Whether the statement containing `i` consumes the iteration with an
/// order-insensitive reducer (`sum`, `count`, …) and shows no float
/// involvement (float addition is order-sensitive).
fn consumed_order_insensitively(toks: &[Token], i: usize, end: usize) -> bool {
    let mut insensitive = false;
    let mut float = false;
    for j in i..end {
        let Some(t) = toks.get(j) else { break };
        if punct(Some(t), ';') {
            break;
        }
        if t.kind == TokenKind::Ident
            && ORDER_INSENSITIVE_CONSUMERS.contains(&t.text.as_str())
            && punct(toks.get(j + 1), '(')
        {
            insensitive = true;
        }
        if t.kind == TokenKind::Ident && (t.text == "f64" || t.text == "f32") {
            float = true;
        }
        if t.kind == TokenKind::Number && t.text.contains('.') {
            float = true;
        }
    }
    insensitive && !float
}

// ---- F1: float reductions on parallel merge paths --------------------------

fn float_merge_pass(ws: &Workspace, graph: &CallGraph, findings: &mut Vec<Finding>) {
    let seeds: Vec<FnId> = (0..ws.fns.len())
        .map(FnId)
        .filter(|&id| {
            let f = &ws.fns[id.0];
            !f.cfg_test
                && !ws.files[f.file].is_test_file
                && f.body.is_some()
                && crate::PARALLEL_SEED_PREFIXES
                    .iter()
                    .any(|p| f.name.starts_with(p))
        })
        .collect();
    let reach = Reach::compute(ws, graph, &seeds, &[]);

    for id in (0..ws.fns.len()).map(FnId) {
        if !reach.reached[id.0] || !scannable(ws, id) {
            continue;
        }
        let name = ws.fns[id.0].name.as_str();
        if !crate::MERGE_FN_MARKERS.iter().any(|m| name.contains(m)) {
            continue;
        }
        let path = ws.files[ws.fns[id.0].file].path.clone();
        if !crate::rules::determinism_scope(&path) {
            continue;
        }
        let (toks, body) = body_tokens(ws, id);
        let chain = reach.chain(ws, id);
        for i in body.clone() {
            let Some(t) = toks.get(i) else { break };
            if t.kind != TokenKind::Ident
                || !FLOAT_REDUCERS.contains(&t.text.as_str())
                || !punct(toks.get(i + 1), '(')
                || i == body.start
                || !punct(toks.get(i - 1), '.')
            {
                continue;
            }
            if statement_has_float(toks, i, body.clone()) {
                findings.push(Finding {
                    rule: "F1",
                    path: path.clone(),
                    line: t.line,
                    message: format!(
                        "float `.{}(` reduction in merge/aggregation fn `{}` on a \
                         sharded/parallel path: float addition does not associate, so \
                         operand order must be pinned",
                        t.text,
                        ws.qualified_name(id)
                    ),
                    hint: "accumulate in a fixed order (indexed loop over a Vec) or keep \
                           integer units until the final serial report"
                        .to_string(),
                    chain: chain.clone(),
                });
            }
        }
    }
}

/// Whether the statement around `i` shows float involvement: an `f64`/`f32`
/// ident (declarations, casts, turbofish) or a float literal.
fn statement_has_float(toks: &[Token], i: usize, body: Range<usize>) -> bool {
    let mut start = i;
    while start > body.start && !punct(toks.get(start - 1), ';') {
        start -= 1;
    }
    for j in start..body.end {
        let Some(t) = toks.get(j) else { break };
        if j > i && punct(Some(t), ';') {
            break;
        }
        if t.kind == TokenKind::Ident && (t.text == "f64" || t.text == "f32") {
            return true;
        }
        if t.kind == TokenKind::Number && t.text.contains('.') {
            return true;
        }
    }
    false
}

// ---- token helpers ---------------------------------------------------------

fn punct(t: Option<&Token>, c: char) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
}

fn ident(t: Option<&Token>, name: &str) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(sources: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let ws = Workspace::build(&owned, &BTreeMap::new());
        lint_graph(&ws, false)
    }

    fn spots<'a>(findings: &'a [Finding], rule: &str) -> Vec<(&'a str, usize)> {
        findings
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| (f.path.as_str(), f.line))
            .collect()
    }

    #[test]
    fn a1_crosses_files_through_the_call_graph() {
        // The old file-local A1 missed exactly this shape: a hot fn calling
        // an allocating helper that lives in a *sibling module*.
        let findings = lint(&[
            (
                "crates/core/src/controller.rs",
                "use crate::util::expand;\n\
                 struct C;\n\
                 impl MemoryScheme for C {\n\
                     fn access(&mut self) { expand(3); }\n\
                 }\n",
            ),
            (
                "crates/core/src/util.rs",
                "pub fn expand(n: u64) -> Vec<u64> { vec![n] }\n",
            ),
        ]);
        assert_eq!(
            spots(&findings, "A1"),
            vec![("crates/core/src/util.rs", 1)],
            "{findings:#?}"
        );
        let chain = &findings[0].chain;
        assert_eq!(chain.len(), 2, "{chain:?}");
        assert!(chain[0].starts_with("C::access (crates/core/src/controller.rs:4)"));
        assert!(chain[1].starts_with("expand (crates/core/src/util.rs:1)"));
    }

    #[test]
    fn p1_follows_trait_object_dispatch() {
        let findings = lint(&[(
            "crates/sim/src/system.rs",
            "struct Inner;\n\
             impl Inner { fn pick(&self, v: &[u8]) -> u8 { v[0] } }\n\
             struct S { inner: Inner }\n\
             impl S { fn run_with_feed(&mut self, v: &[u8]) { self.inner.pick(v); } }\n\
             impl System { fn noop(&self) {} }\n\
             struct System;\n",
        )]);
        // `S` is not `System`, so nothing seeds — the hot set derives from
        // declared seeds, not file names.
        assert!(findings.is_empty(), "{findings:#?}");

        let findings = lint(&[(
            "crates/sim/src/system.rs",
            "struct Inner;\n\
             impl Inner { fn pick(&self, v: &[u8]) -> u8 { v[0] } }\n\
             struct System { inner: Inner }\n\
             impl System { fn run_with_feed(&mut self, v: &[u8]) { self.inner.pick(v); } }\n",
        )]);
        assert_eq!(
            spots(&findings, "P1"),
            vec![("crates/sim/src/system.rs", 2)],
            "{findings:#?}"
        );
        assert_eq!(findings[0].chain.len(), 2, "{:?}", findings[0].chain);
    }

    #[test]
    fn amortized_boundaries_stop_the_closure() {
        // `RunObs::epoch_tick` is a declared boundary: allocations behind
        // it do not fire even though the run loop calls it.
        let findings = lint(&[(
            "crates/sim/src/system.rs",
            "struct RunObs;\n\
             impl RunObs { fn epoch_tick(&mut self) { let v = vec![1]; let _ = v; } }\n\
             struct System { obs: RunObs }\n\
             impl System { fn run(&mut self) { self.obs.epoch_tick(); } }\n",
        )]);
        assert!(spots(&findings, "A1").is_empty(), "{findings:#?}");
    }

    #[test]
    fn n1_flags_hash_iteration_feeding_a_merge() {
        let findings = lint(&[(
            "crates/sim/src/metrics.rs",
            "struct M { counts: FxHashMap }\n\
             impl M {\n\
                 fn collect(&self) -> u64 {\n\
                     let mut total = 0u64;\n\
                     for (_k, v) in &self.counts { total += v; }\n\
                     self.merge();\n\
                     total\n\
                 }\n\
                 fn merge(&self) {}\n\
             }\n",
        )]);
        assert_eq!(
            spots(&findings, "N1"),
            vec![("crates/sim/src/metrics.rs", 5)],
            "{findings:#?}"
        );
        assert!(
            findings[0].chain[1].contains("M::merge"),
            "{:?}",
            findings[0].chain
        );
    }

    #[test]
    fn n1_exempts_sorted_and_order_insensitive_consumption() {
        let findings = lint(&[(
            "crates/sim/src/metrics.rs",
            "struct M { counts: FxHashMap, tags: FxHashSet }\n\
             impl M {\n\
                 fn collect(&self) -> u64 {\n\
                     let mut keys: Vec<u64> = self.counts.keys().copied().collect();\n\
                     keys.sort_unstable();\n\
                     let n: u64 = self.tags.iter().map(|t| t.0).sum();\n\
                     self.merge();\n\
                     n\n\
                 }\n\
                 fn merge(&self) {}\n\
             }\n",
        )]);
        assert!(spots(&findings, "N1").is_empty(), "{findings:#?}");
    }

    #[test]
    fn n1_ignores_fns_that_cannot_reach_a_sink() {
        let findings = lint(&[(
            "crates/sim/src/metrics.rs",
            "struct M { counts: FxHashMap }\n\
             impl M {\n\
                 fn debug_dump(&self) -> u64 {\n\
                     let mut total = 0u64;\n\
                     for (_k, v) in &self.counts { total += v; }\n\
                     total\n\
                 }\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn f1_flags_float_reductions_on_the_sharded_path() {
        let findings = lint(&[(
            "crates/sim/src/shard.rs",
            "pub fn run_system_sharded(xs: &[f64]) -> f64 { merge_deltas(xs) }\n\
             fn merge_deltas(xs: &[f64]) -> f64 {\n\
                 let total: f64 = xs.iter().sum();\n\
                 total\n\
             }\n",
        )]);
        assert_eq!(
            spots(&findings, "F1"),
            vec![("crates/sim/src/shard.rs", 3)],
            "{findings:#?}"
        );
        assert!(
            findings[0].chain[0].contains("run_system_sharded"),
            "{:?}",
            findings[0].chain
        );
        // Integer reductions in the same shape are fine.
        let findings = lint(&[(
            "crates/sim/src/shard.rs",
            "pub fn run_system_sharded(xs: &[u64]) -> u64 { merge_deltas(xs) }\n\
             fn merge_deltas(xs: &[u64]) -> u64 {\n\
                 let total: u64 = xs.iter().sum();\n\
                 total\n\
             }\n",
        )]);
        assert!(spots(&findings, "F1").is_empty(), "{findings:#?}");
    }

    #[test]
    fn stale_boundaries_are_a_config_error_under_check_config() {
        let owned = vec![(
            "crates/sim/src/system.rs".to_string(),
            "struct System;\nimpl System { fn run(&mut self) {} }\n".to_string(),
        )];
        let ws = Workspace::build(&owned, &BTreeMap::new());
        // The real config names `RunObs::epoch_tick`, which this workspace
        // does not define — check_config must surface that as X1.
        let findings = lint_graph(&ws, true);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "X1" && f.message.contains("RunObs::epoch_tick")),
            "{findings:#?}"
        );
        // Without check_config (fixture mode) the same workspace is clean.
        assert!(lint_graph(&ws, false).is_empty());
    }

    #[test]
    fn test_files_and_cfg_test_fns_never_seed_or_fire() {
        let findings = lint(&[(
            "crates/sim/tests/mock.rs",
            "struct Mock;\n\
             impl MemoryScheme for Mock {\n\
                 fn access(&mut self) { let v = vec![1]; let _ = v.to_vec(); }\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }
}
