//! The run-time side of the fault plane: the delivery cursor and the
//! effect ledger the chaos harness audits.

use silcfm_types::fault::{
    failover_disengage_threshold, failover_engage_threshold, FaultEffect, FaultKind,
    ScheduledFault, SchemeFault,
};

use crate::schedule::FaultSchedule;

/// A cursor over a [`FaultSchedule`] that hands out faults as simulation
/// time passes. The driving loop calls [`pop_due`](FaultDriver::pop_due) in
/// a `while let` before each demand access; delivery order is exactly
/// schedule order, so runs replay bit-identically.
#[derive(Debug, Clone)]
pub struct FaultDriver {
    faults: Vec<ScheduledFault>,
    cursor: usize,
}

impl FaultDriver {
    /// Builds a driver positioned at the start of `schedule`.
    pub fn new(schedule: FaultSchedule) -> Self {
        Self {
            faults: schedule.faults().to_vec(),
            cursor: 0,
        }
    }

    /// Returns the next fault whose delivery cycle is `<= now`, advancing
    /// past it, or `None` when no fault is due yet.
    pub fn pop_due(&mut self, now: u64) -> Option<ScheduledFault> {
        let f = *self.faults.get(self.cursor)?;
        if f.at <= now {
            self.cursor += 1;
            Some(f)
        } else {
            None
        }
    }

    /// Faults not yet delivered.
    pub fn remaining(&self) -> usize {
        self.faults.len() - self.cursor
    }

    /// Total faults in the underlying schedule.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Rewinds to the start of the schedule (for replay runs).
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

/// The effect ledger: one increment per delivered fault, bucketed by
/// [`FaultEffect`]. The chaos harness's core invariant is
/// [`conserved`](FaultStats::conserved) — no delivered fault may vanish
/// without an accounted outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults delivered to any component.
    pub injected: u64,
    /// Absorbed with no data impact (ECC corrections, timing-only faults).
    pub corrected: u64,
    /// Survived through a degraded-service path (evacuation, invalidation,
    /// NACK-and-retry); nothing lost.
    pub recovered: u64,
    /// Data loss: a resident subblock's only copy became unreachable.
    pub poisoned: u64,
    /// No observable target (silent flips, faults aimed at absent state).
    pub masked: u64,
}

impl FaultStats {
    /// Records one delivery and its effect.
    pub fn record(&mut self, effect: FaultEffect) {
        self.injected += 1;
        match effect {
            FaultEffect::Corrected => self.corrected += 1,
            FaultEffect::Recovered => self.recovered += 1,
            FaultEffect::Poisoned => self.poisoned += 1,
            FaultEffect::Masked => self.masked += 1,
        }
    }

    /// `true` when every injected fault has exactly one accounted effect.
    pub fn conserved(&self) -> bool {
        self.injected == self.corrected + self.recovered + self.poisoned + self.masked
    }

    /// Folds another ledger into this one (grid aggregation).
    pub fn merge(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.corrected += other.corrected;
        self.recovered += other.recovered;
        self.poisoned += other.poisoned;
        self.masked += other.masked;
    }
}

/// Replays the way degradations/repairs in `faults` through the shared
/// hysteresis thresholds and returns the failover transitions a correct
/// controller must emit: `(cycle, engaged)` pairs, alternating starting
/// with `engaged == true`. Pass a prefix of
/// [`FaultSchedule::faults`] to model a run that ended before the whole
/// schedule was delivered.
///
/// This is schedule-only arithmetic — no controller state — which is what
/// lets the chaos harness check the controller against an independent
/// oracle.
pub fn expected_failover_transitions(
    faults: &[ScheduledFault],
    associativity: u32,
) -> Vec<(u64, bool)> {
    let engage_at = failover_engage_threshold(associativity);
    let disengage_at = failover_disengage_threshold(associativity);
    let mut degraded = vec![false; associativity as usize];
    let mut engaged = false;
    let mut out = Vec::new();
    for f in faults {
        let count_was = degraded.iter().filter(|d| **d).count() as u32;
        match f.kind {
            FaultKind::Scheme(SchemeFault::DegradeWay { way }) => {
                if let Some(d) = degraded.get_mut(way as usize) {
                    *d = true;
                }
            }
            FaultKind::Scheme(SchemeFault::RestoreWay { way }) => {
                if let Some(d) = degraded.get_mut(way as usize) {
                    *d = false;
                }
            }
            _ => continue,
        }
        let count = degraded.iter().filter(|d| **d).count() as u32;
        if count == count_was {
            continue;
        }
        if !engaged && count >= engage_at {
            engaged = true;
            out.push((f.at, true));
        } else if engaged && count <= disengage_at {
            engaged = false;
            out.push((f.at, false));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultRates, FaultTopology};

    fn topo() -> FaultTopology {
        FaultTopology {
            nm_ways: 4,
            nm_frames: 1024,
            subblocks: 32,
            nm_channels: 8,
            fm_channels: 4,
        }
    }

    #[test]
    fn driver_delivers_in_order_and_respects_time() {
        let s = FaultSchedule::generate(9, 2_000_000, &FaultRates::harsh(), &topo()).unwrap();
        let total = s.len();
        let mut d = FaultDriver::new(s);
        assert_eq!(d.remaining(), total);
        assert!(d.pop_due(0).is_none() || d.faults[0].at == 0);
        let mut seen = 0;
        let mut prev_at = 0;
        while let Some(f) = d.pop_due(u64::MAX) {
            assert!(f.at >= prev_at);
            prev_at = f.at;
            seen += 1;
        }
        assert_eq!(seen, total);
        assert_eq!(d.remaining(), 0);
        d.reset();
        assert_eq!(d.remaining(), total);
    }

    #[test]
    fn pop_due_holds_future_faults() {
        let s = FaultSchedule::generate(11, 1_000_000, &FaultRates::harsh(), &topo()).unwrap();
        assert!(!s.is_empty());
        let first_at = s.faults()[0].at;
        let mut d = FaultDriver::new(s);
        if first_at > 0 {
            assert!(d.pop_due(first_at - 1).is_none());
        }
        assert!(d.pop_due(first_at).is_some());
    }

    #[test]
    fn stats_conserve_exactly_when_every_effect_recorded() {
        let mut st = FaultStats::default();
        st.record(FaultEffect::Corrected);
        st.record(FaultEffect::Recovered);
        st.record(FaultEffect::Poisoned);
        st.record(FaultEffect::Masked);
        assert!(st.conserved());
        assert_eq!(st.injected, 4);
        st.injected += 1; // a delivery that lost its effect
        assert!(!st.conserved());
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = FaultStats {
            injected: 2,
            corrected: 1,
            recovered: 1,
            ..Default::default()
        };
        let b = FaultStats {
            injected: 3,
            poisoned: 2,
            masked: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.injected, 5);
        assert!(a.conserved());
    }

    #[test]
    fn expected_transitions_alternate_and_start_engaged() {
        let s = FaultSchedule::generate(21, 6_000_000, &FaultRates::harsh(), &topo()).unwrap();
        let tr = expected_failover_transitions(s.faults(), 4);
        for (i, (_, engaged)) in tr.iter().enumerate() {
            // First transition engages; they alternate thereafter.
            assert_eq!(*engaged, i % 2 == 0);
        }
        let mut prev = 0;
        for (at, _) in &tr {
            assert!(*at >= prev);
            prev = *at;
        }
    }
}
