//! Deterministic, seed-derived fault injection for the SILC-FM simulator.
//!
//! The crate turns a single `u64` seed plus a [`FaultRates`] configuration
//! into a [`FaultSchedule`]: a time-sorted list of
//! [`ScheduledFault`](silcfm_types::fault::ScheduledFault)s covering NM way
//! degradation/repair, transient subblock bit flips (with ECC outcomes
//! pre-drawn), remap/metadata parity errors, and DRAM channel stalls and
//! hard failures. All randomness is spent at *generation* time — each fault
//! class draws from its own [`SplitMix64`](silcfm_types::rng::SplitMix64)-
//! split stream, so adding events of one class never perturbs another, and
//! replaying a schedule is bit-identical by construction.
//!
//! At run time the schedule becomes a [`FaultDriver`] cursor the simulation
//! loop polls (`pop_due`) before each demand access, and a [`FaultStats`]
//! ledger that records the [`FaultEffect`](silcfm_types::fault::FaultEffect)
//! of every delivery. The chaos harness asserts the ledger *conserves* —
//! every injected fault is accounted as corrected, recovered, poisoned or
//! masked — and that the controller's failover transitions match
//! [`expected_failover_transitions`] computed from the schedule alone.
//!
//! ```
//! use silcfm_fault::{FaultRates, FaultSchedule, FaultTopology};
//!
//! let rates = FaultRates::gentle();
//! let topo = FaultTopology {
//!     nm_ways: 4,
//!     nm_frames: 4096,
//!     subblocks: 32,
//!     nm_channels: 8,
//!     fm_channels: 4,
//! };
//! let a = FaultSchedule::generate(7, 1_000_000, &rates, &topo).unwrap();
//! let b = FaultSchedule::generate(7, 1_000_000, &rates, &topo).unwrap();
//! assert_eq!(a.faults(), b.faults()); // same seed, same schedule — always
//! ```

pub mod driver;
pub mod schedule;

pub use driver::{expected_failover_transitions, FaultDriver, FaultStats};
pub use schedule::{FaultRates, FaultSchedule, FaultTopology};
