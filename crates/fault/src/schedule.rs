//! Fault-schedule generation: one seed in, a sorted fault timeline out.
//!
//! Rates are expressed as *expected events per million CPU cycles*; the
//! generator converts each to an event count over the horizon (integer part
//! plus one Bernoulli draw on the fraction), places the events uniformly in
//! time, and draws per-event payloads (target frame, subblock, channel, ECC
//! outcome) from the same per-class stream. Each class's stream seed comes
//! from `SplitMix64::split(class_id)`, so classes are decorrelated and
//! enabling one never shifts another's timeline.

use silcfm_types::error::SilcFmError;
use silcfm_types::fault::{ChannelFault, EccOutcome, FaultKind, ScheduledFault, SchemeFault};
use silcfm_types::rng::{Rng, SplitMix64, Xoshiro256StarStar};
use silcfm_types::MemKind;

/// Per-class stream salts. Distinct constants (not 0..n) so a schedule's
/// streams stay stable even if classes are later reordered.
const CLASS_WAY: u64 = 0xFA01;
const CLASS_FLIP: u64 = 0xFA02;
const CLASS_PARITY: u64 = 0xFA03;
const CLASS_NM_CHANNEL: u64 = 0xFA04;
const CLASS_FM_CHANNEL: u64 = 0xFA05;

/// Expected fault intensities, all per **million CPU cycles** unless noted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// NM way degradation events.
    pub way_degrade_per_m: f64,
    /// CPU cycles between a way degradation and its scheduled repair;
    /// `0` means degraded ways are never repaired.
    pub way_repair_delay: u64,
    /// Transient subblock bit flips.
    pub bit_flip_per_m: f64,
    /// Probability a flip is ECC-corrected.
    pub ecc_correct_p: f64,
    /// Probability a flip is detected but uncorrectable (DUE). The
    /// remainder (`1 - correct - due`) is silent/undetected.
    pub ecc_due_p: f64,
    /// Remap/metadata parity errors.
    pub metadata_parity_per_m: f64,
    /// DRAM channel stall windows (split between NM and FM devices).
    pub channel_stall_per_m: f64,
    /// Length of one stall window, in CPU cycles.
    pub channel_stall_cycles: u64,
    /// DRAM channel hard failures (split between NM and FM devices).
    pub channel_fail_per_m: f64,
    /// CPU cycles between a channel failure and its scheduled repair;
    /// `0` means failed channels stay down.
    pub channel_repair_delay: u64,
}

impl FaultRates {
    /// No faults at all: generates an empty schedule. The behavioral
    /// baseline every golden test pins.
    pub fn none() -> Self {
        Self {
            way_degrade_per_m: 0.0,
            way_repair_delay: 0,
            bit_flip_per_m: 0.0,
            ecc_correct_p: 0.95,
            ecc_due_p: 0.04,
            metadata_parity_per_m: 0.0,
            channel_stall_per_m: 0.0,
            channel_stall_cycles: 0,
            channel_fail_per_m: 0.0,
            channel_repair_delay: 0,
        }
    }

    /// A mild mixed workload of every fault class — the chaos smoke's
    /// default: enough events to exercise all recovery paths without
    /// drowning the run.
    pub fn gentle() -> Self {
        Self {
            way_degrade_per_m: 2.0,
            way_repair_delay: 200_000,
            bit_flip_per_m: 20.0,
            ecc_correct_p: 0.90,
            ecc_due_p: 0.08,
            metadata_parity_per_m: 4.0,
            channel_stall_per_m: 4.0,
            channel_stall_cycles: 10_000,
            channel_fail_per_m: 1.0,
            channel_repair_delay: 300_000,
        }
    }

    /// An aggressive soak: frequent faults in every class, repairs enabled
    /// so failover engages *and* disengages within one run.
    pub fn harsh() -> Self {
        Self {
            way_degrade_per_m: 12.0,
            way_repair_delay: 60_000,
            bit_flip_per_m: 120.0,
            ecc_correct_p: 0.80,
            ecc_due_p: 0.15,
            metadata_parity_per_m: 30.0,
            channel_stall_per_m: 20.0,
            channel_stall_cycles: 5_000,
            channel_fail_per_m: 6.0,
            channel_repair_delay: 80_000,
        }
    }

    /// Checks every rate and probability for sanity.
    pub fn validate(&self) -> Result<(), SilcFmError> {
        let rates = [
            ("way_degrade_per_m", self.way_degrade_per_m),
            ("bit_flip_per_m", self.bit_flip_per_m),
            ("metadata_parity_per_m", self.metadata_parity_per_m),
            ("channel_stall_per_m", self.channel_stall_per_m),
            ("channel_fail_per_m", self.channel_fail_per_m),
        ];
        for (name, r) in rates {
            if !r.is_finite() || r < 0.0 {
                return Err(SilcFmError::fault_config(format!(
                    "{name} must be finite and >= 0, got {r}"
                )));
            }
        }
        for (name, p) in [
            ("ecc_correct_p", self.ecc_correct_p),
            ("ecc_due_p", self.ecc_due_p),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(SilcFmError::fault_config(format!(
                    "{name} must be in [0, 1], got {p}"
                )));
            }
        }
        if self.ecc_correct_p + self.ecc_due_p > 1.0 {
            return Err(SilcFmError::fault_config(format!(
                "ecc_correct_p + ecc_due_p must be <= 1, got {}",
                self.ecc_correct_p + self.ecc_due_p
            )));
        }
        if self.channel_stall_per_m > 0.0 && self.channel_stall_cycles == 0 {
            return Err(SilcFmError::fault_config(
                "channel_stall_cycles must be > 0 when stalls are enabled",
            ));
        }
        Ok(())
    }
}

/// The shape of the hardware the generator aims faults at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTopology {
    /// NM associative ways (SILC-FM's `associativity`).
    pub nm_ways: u8,
    /// Total NM frames (fault targets for flips and parity errors).
    pub nm_frames: u32,
    /// Subblock slots per frame.
    pub subblocks: u8,
    /// NM (HBM) channels.
    pub nm_channels: u8,
    /// FM (DDR) channels.
    pub fm_channels: u8,
}

impl FaultTopology {
    /// Checks every extent is non-zero.
    pub fn validate(&self) -> Result<(), SilcFmError> {
        let extents = [
            ("nm_ways", u32::from(self.nm_ways)),
            ("nm_frames", self.nm_frames),
            ("subblocks", u32::from(self.subblocks)),
            ("nm_channels", u32::from(self.nm_channels)),
            ("fm_channels", u32::from(self.fm_channels)),
        ];
        for (name, v) in extents {
            if v == 0 {
                return Err(SilcFmError::fault_config(format!("{name} must be > 0")));
            }
        }
        Ok(())
    }
}

/// A time-sorted fault timeline, fully determined by `(seed, horizon,
/// rates, topology)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    faults: Vec<ScheduledFault>,
}

/// Expected event count for one class: integer part of `rate_per_m *
/// horizon / 1e6` plus one Bernoulli draw on the fractional part.
fn event_count<R: Rng>(rng: &mut R, rate_per_m: f64, horizon: u64) -> u64 {
    if rate_per_m <= 0.0 || horizon == 0 {
        return 0;
    }
    let lambda = rate_per_m * horizon as f64 / 1_000_000.0;
    let base = lambda.floor();
    let extra = u64::from(rng.gen_bool(lambda - base));
    base as u64 + extra
}

impl FaultSchedule {
    /// Generates the schedule for `horizon` CPU cycles.
    pub fn generate(
        seed: u64,
        horizon: u64,
        rates: &FaultRates,
        topo: &FaultTopology,
    ) -> Result<Self, SilcFmError> {
        rates.validate()?;
        topo.validate()?;
        let root = SplitMix64::new(seed);
        let mut faults: Vec<ScheduledFault> = Vec::new();

        // NM way degradation (+ optional scheduled repair).
        let mut rng = Xoshiro256StarStar::seed_from_u64(root.split(CLASS_WAY));
        for _ in 0..event_count(&mut rng, rates.way_degrade_per_m, horizon) {
            let at = rng.gen_range(0..horizon.max(1));
            let way = rng.gen_range(0u32..u32::from(topo.nm_ways)) as u8;
            faults.push(ScheduledFault {
                at,
                kind: FaultKind::Scheme(SchemeFault::DegradeWay { way }),
            });
            if rates.way_repair_delay > 0 {
                faults.push(ScheduledFault {
                    at: at.saturating_add(rates.way_repair_delay),
                    kind: FaultKind::Scheme(SchemeFault::RestoreWay { way }),
                });
            }
        }

        // Transient subblock bit flips with pre-drawn ECC outcomes.
        let mut rng = Xoshiro256StarStar::seed_from_u64(root.split(CLASS_FLIP));
        for _ in 0..event_count(&mut rng, rates.bit_flip_per_m, horizon) {
            let at = rng.gen_range(0..horizon.max(1));
            let frame = rng.gen_range(0..topo.nm_frames);
            let subblock = rng.gen_range(0u32..u32::from(topo.subblocks)) as u8;
            let u = rng.next_f64();
            let ecc = if u < rates.ecc_correct_p {
                EccOutcome::Corrected
            } else if u < rates.ecc_correct_p + rates.ecc_due_p {
                EccOutcome::DetectedUncorrectable
            } else {
                EccOutcome::Undetected
            };
            faults.push(ScheduledFault {
                at,
                kind: FaultKind::Scheme(SchemeFault::BitFlip {
                    frame,
                    subblock,
                    ecc,
                }),
            });
        }

        // Remap/metadata parity errors.
        let mut rng = Xoshiro256StarStar::seed_from_u64(root.split(CLASS_PARITY));
        for _ in 0..event_count(&mut rng, rates.metadata_parity_per_m, horizon) {
            let at = rng.gen_range(0..horizon.max(1));
            let frame = rng.gen_range(0..topo.nm_frames);
            faults.push(ScheduledFault {
                at,
                kind: FaultKind::Scheme(SchemeFault::MetadataParity { frame }),
            });
        }

        // Channel stalls and hard failures, one stream per device.
        for (class, device, channels) in [
            (CLASS_NM_CHANNEL, MemKind::Near, topo.nm_channels),
            (CLASS_FM_CHANNEL, MemKind::Far, topo.fm_channels),
        ] {
            let mut rng = Xoshiro256StarStar::seed_from_u64(root.split(class));
            // Each device carries half the configured channel-fault rate.
            for _ in 0..event_count(&mut rng, rates.channel_stall_per_m / 2.0, horizon) {
                let at = rng.gen_range(0..horizon.max(1));
                let channel = rng.gen_range(0u32..u32::from(channels)) as u8;
                faults.push(ScheduledFault {
                    at,
                    kind: FaultKind::Dram {
                        device,
                        fault: ChannelFault::Stall {
                            channel,
                            duration_cycles: rates.channel_stall_cycles,
                        },
                    },
                });
            }
            for _ in 0..event_count(&mut rng, rates.channel_fail_per_m / 2.0, horizon) {
                let at = rng.gen_range(0..horizon.max(1));
                let channel = rng.gen_range(0u32..u32::from(channels)) as u8;
                faults.push(ScheduledFault {
                    at,
                    kind: FaultKind::Dram {
                        device,
                        fault: ChannelFault::Fail { channel },
                    },
                });
                if rates.channel_repair_delay > 0 {
                    faults.push(ScheduledFault {
                        at: at.saturating_add(rates.channel_repair_delay),
                        kind: FaultKind::Dram {
                            device,
                            fault: ChannelFault::Repair { channel },
                        },
                    });
                }
            }
        }

        // Stable sort: simultaneous faults keep their deterministic
        // generation order, so replays deliver in the exact same sequence.
        faults.sort_by_key(|f| f.at);
        Ok(Self { faults })
    }

    /// The timeline, sorted by delivery cycle.
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// ECC outcome counts over all scheduled bit flips:
    /// `(corrected, due, undetected)`. Used by the distribution property
    /// test to compare against the configured probabilities.
    pub fn ecc_histogram(&self) -> (u64, u64, u64) {
        let mut h = (0, 0, 0);
        for f in &self.faults {
            if let FaultKind::Scheme(SchemeFault::BitFlip { ecc, .. }) = f.kind {
                match ecc {
                    EccOutcome::Corrected => h.0 += 1,
                    EccOutcome::DetectedUncorrectable => h.1 += 1,
                    EccOutcome::Undetected => h.2 += 1,
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> FaultTopology {
        FaultTopology {
            nm_ways: 4,
            nm_frames: 4096,
            subblocks: 32,
            nm_channels: 8,
            fm_channels: 4,
        }
    }

    #[test]
    fn zero_rates_yield_empty_schedule() {
        let s = FaultSchedule::generate(1, 1_000_000, &FaultRates::none(), &topo()).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultSchedule::generate(42, 2_000_000, &FaultRates::harsh(), &topo()).unwrap();
        let b = FaultSchedule::generate(42, 2_000_000, &FaultRates::harsh(), &topo()).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultSchedule::generate(1, 2_000_000, &FaultRates::harsh(), &topo()).unwrap();
        let b = FaultSchedule::generate(2, 2_000_000, &FaultRates::harsh(), &topo()).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn schedule_is_time_sorted_and_targets_in_range() {
        let s = FaultSchedule::generate(7, 3_000_000, &FaultRates::harsh(), &topo()).unwrap();
        let t = topo();
        let mut prev = 0;
        for f in s.faults() {
            assert!(f.at >= prev);
            prev = f.at;
            match f.kind {
                FaultKind::Scheme(SchemeFault::DegradeWay { way })
                | FaultKind::Scheme(SchemeFault::RestoreWay { way }) => {
                    assert!(way < t.nm_ways);
                }
                FaultKind::Scheme(SchemeFault::BitFlip {
                    frame, subblock, ..
                }) => {
                    assert!(frame < t.nm_frames);
                    assert!(subblock < t.subblocks);
                }
                FaultKind::Scheme(SchemeFault::MetadataParity { frame }) => {
                    assert!(frame < t.nm_frames);
                }
                FaultKind::Dram { device, fault } => {
                    let chans = match device {
                        MemKind::Near => t.nm_channels,
                        MemKind::Far => t.fm_channels,
                    };
                    assert!(fault.channel() < chans);
                }
            }
        }
    }

    #[test]
    fn every_degrade_gets_a_repair_when_delay_set() {
        let rates = FaultRates::harsh();
        let s = FaultSchedule::generate(3, 4_000_000, &rates, &topo()).unwrap();
        let degrades = s
            .faults()
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::Scheme(SchemeFault::DegradeWay { .. })))
            .count();
        let repairs = s
            .faults()
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::Scheme(SchemeFault::RestoreWay { .. })))
            .count();
        assert_eq!(degrades, repairs);
        assert!(degrades > 0);
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let mut r = FaultRates::none();
        r.bit_flip_per_m = -1.0;
        assert!(r.validate().is_err());
        let mut r = FaultRates::none();
        r.ecc_correct_p = 0.9;
        r.ecc_due_p = 0.2;
        assert!(r.validate().is_err());
        let mut r = FaultRates::none();
        r.channel_stall_per_m = 1.0;
        r.channel_stall_cycles = 0;
        assert!(r.validate().is_err());
        let mut t = topo();
        t.nm_ways = 0;
        assert!(t.validate().is_err());
    }
}
