//! SILC-FM reproduction — umbrella crate.
//!
//! Re-exports every sub-crate of the workspace so downstream users (and the
//! examples/integration tests in this repository) can depend on a single
//! crate:
//!
//! ```
//! use silc_fm::types::SystemConfig;
//! let cfg = SystemConfig::paper();
//! assert_eq!(cfg.core.cores, 16);
//! ```
//!
//! See the crate-level docs of each module for details:
//!
//! * [`types`] — shared vocabulary (addresses, geometry, scheme trait);
//! * [`dram`] — event-driven DRAM timing models (HBM2 / DDR3);
//! * [`cache`] — SRAM cache hierarchy;
//! * [`cpu`] — ROB-window core model;
//! * [`trace`] — synthetic SPEC-like workloads (Table III);
//! * [`core`] — the SILC-FM controller (the paper's contribution);
//! * [`baselines`] — Random / HMA / CAMEO / CAMEO+P / PoM;
//! * [`fault`] — deterministic fault schedules and the effect ledger;
//! * [`obs`] — tracing sinks, cycle-domain metrics and trace exporters;
//! * [`sim`] — full-system simulation and experiment runners.

pub use silcfm_baselines as baselines;
pub use silcfm_cache as cache;
pub use silcfm_core as core;
pub use silcfm_cpu as cpu;
pub use silcfm_dram as dram;
pub use silcfm_fault as fault;
pub use silcfm_obs as obs;
pub use silcfm_sim as sim;
pub use silcfm_trace as trace;
pub use silcfm_types as types;
